//! A std-only HTTP server exposing the LyriC engine for scraping and
//! remote querying.
//!
//! Endpoints:
//!
//! * `GET /metrics` — the global metric registry in Prometheus text
//!   format 0.0.4 (`lyric::metrics::render_prometheus`);
//! * `GET /healthz` — liveness (`ok`);
//! * `GET /version` — build identity: crate version, git revision, and
//!   the host's available parallelism, as JSON;
//! * `GET /profiles` — the cost-profile store
//!   (`lyric::metrics::profile::snapshot_json`): decayed per-plan-node
//!   observations keyed by query shape, fed by every explained run;
//! * `GET /debug/inflight` — the in-flight query registry
//!   (`lyric::flight::inflight`): every currently-executing query with
//!   its live progress counters and percent-of-budget;
//! * `GET /debug/flight` — the flight recorder rings
//!   (`lyric::flight::recorder`): recent completed-query summaries and
//!   sampled trace events;
//! * `GET /debug/caches` — occupancy and generation of the process-global
//!   memo caches (sat, entailment, interval-box) plus the server
//!   database's store-index state;
//! * `POST /query` — the request body is either a raw LyriC `SELECT`
//!   statement or a JSON object `{"query": "...", "explain": bool}`,
//!   evaluated against the server's shared [`Database`] via
//!   [`execute_shared`] (or `execute_explained_with_options` when
//!   `explain` is true, adding a `plan` member — the operator tree with
//!   runtime attribution); the response is a JSON object with `columns`,
//!   `row_count`, `rows` (oids as strings), `duration_ms`, and the
//!   per-query `stats` counters, or `{"error": ...}` with status 400.
//!   JSON bodies are validated strictly: unknown members, a non-string
//!   `query`, or a non-boolean `explain` are structured 400s.
//!
//! The implementation is deliberately minimal — the workspace builds
//! offline with no external crates (DESIGN.md §5) — so this is
//! `std::net::TcpListener`, HTTP/1.0-style request parsing (request
//! line, headers, `Content-Length` body), one thread per connection,
//! and `Connection: close` on every response. That is all a Prometheus
//! scraper or a smoke-test client needs.
//!
//! [`Server::bind`] on port 0 picks an ephemeral port, which is how the
//! `metrics_smoke` CI binary drives an in-process instance.

#![warn(missing_docs)]

use lyric::oodb::Database;
use lyric::trace::Json;
use lyric::{execute_shared, ExecOptions};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

/// Largest accepted request body (a query text), in bytes.
const MAX_BODY: usize = 1 << 20;

/// A bound (but not yet running) server: the listener plus the shared
/// database and per-query execution options.
pub struct Server {
    listener: TcpListener,
    db: Arc<Database>,
    opts: ExecOptions,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port), serving
    /// queries against `db` under per-query options `opts`.
    pub fn bind(addr: &str, db: Arc<Database>, opts: ExecOptions) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            db,
            opts,
        })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept connections forever, one handler thread per connection.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let db = Arc::clone(&self.db);
            let opts = self.opts.clone();
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &db, &opts);
            });
        }
        Ok(())
    }

    /// Run the accept loop on a detached background thread, returning the
    /// bound address. Used by in-process clients (`metrics_smoke`, tests);
    /// the thread lives until process exit.
    pub fn spawn(self) -> std::io::Result<SocketAddr> {
        let addr = self.local_addr()?;
        std::thread::Builder::new()
            .name("lyric-serve".to_string())
            .spawn(move || {
                let _ = self.run();
            })?;
        Ok(addr)
    }
}

struct Request {
    method: String,
    path: String,
    body: String,
}

fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err("malformed request line".to_string());
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        let header = header.trim();
        if n == 0 || header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body too large ({content_length} bytes)"));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|e| format!("read body: {e}"))?;
    }
    Ok(Request {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A validated `POST /query` request: the statement text plus the
/// explain flag from the JSON envelope (raw-text bodies never explain).
struct QueryRequest {
    query: String,
    explain: bool,
}

/// Parse a `POST /query` body. A body starting with `{` must be a JSON
/// object with a string `query` and an optional boolean `explain`, and
/// nothing else — unknown members are rejected so client typos
/// (`"expalin"`, `"qurey"`) fail loudly instead of silently running
/// without their option. Anything else is the legacy raw statement text.
fn parse_query_body(body: &str) -> Result<QueryRequest, String> {
    let trimmed = body.trim();
    if !trimmed.starts_with('{') {
        return Ok(QueryRequest {
            query: trimmed.to_string(),
            explain: false,
        });
    }
    let doc =
        lyric::trace::json::parse(trimmed).map_err(|e| format!("malformed JSON body: {e}"))?;
    let Json::Obj(pairs) = &doc else {
        return Err("JSON body must be an object".to_string());
    };
    let mut query: Option<String> = None;
    let mut explain = false;
    for (key, value) in pairs {
        match (key.as_str(), value) {
            ("query", Json::Str(s)) => query = Some(s.clone()),
            ("query", _) => return Err("\"query\" must be a string".to_string()),
            ("explain", Json::Bool(b)) => explain = *b,
            ("explain", _) => return Err("\"explain\" must be a boolean".to_string()),
            (other, _) => {
                return Err(format!(
                    "unknown member {other:?}; expected \"query\" and optional \"explain\""
                ))
            }
        }
    }
    let query = query.ok_or_else(|| "JSON body lacks a \"query\" member".to_string())?;
    Ok(QueryRequest { query, explain })
}

/// Evaluate one `POST /query` body and build the JSON reply; `Err`
/// carries the message for a 400 response.
fn run_query(db: &Database, opts: &ExecOptions, body: &str) -> Result<Json, String> {
    let req = parse_query_body(body)?;
    let src = req.query.trim();
    let started = Instant::now();
    let (result, report) = if req.explain {
        lyric::execute_explained_with_options(db, src, opts)
            .map(|(res, rep)| (res, Some(rep)))
            .map_err(|e| e.to_string())?
    } else {
        (
            execute_shared(db, src, opts).map_err(|e| e.to_string())?,
            None,
        )
    };
    let duration_ms = started.elapsed().as_secs_f64() * 1e3;
    let columns: Vec<Json> = result.columns.iter().map(Json::str).collect();
    let rows: Vec<Json> = result
        .rows
        .iter()
        .map(|row| Json::Arr(row.iter().map(|oid| Json::str(oid.to_string())).collect()))
        .collect();
    let stats = Json::obj(
        lyric::trace::stats::COUNTER_NAMES
            .iter()
            .copied()
            .zip(result.stats.counters())
            .map(|(name, value)| (name, Json::int(value))),
    );
    let mut reply = vec![
        ("columns".to_string(), Json::Arr(columns)),
        ("row_count".to_string(), Json::int(rows.len() as u64)),
        ("rows".to_string(), Json::Arr(rows)),
        ("duration_ms".to_string(), Json::Num(duration_ms)),
        ("stats".to_string(), stats),
    ];
    if let Some(report) = report {
        reply.push(("plan".to_string(), report.to_json()));
    }
    Ok(Json::Obj(reply))
}

/// Every path the server answers, for the 404 body and the startup
/// banner.
pub const ENDPOINTS: [&str; 8] = [
    "GET /metrics",
    "GET /healthz",
    "GET /version",
    "GET /profiles",
    "GET /debug/inflight",
    "GET /debug/flight",
    "GET /debug/caches",
    "POST /query",
];

/// The `GET /version` body: build identity for correlating scrapes,
/// dumps, and log lines with a binary.
pub fn version_json() -> Json {
    Json::obj([
        ("version", Json::str(lyric::metrics::build::version())),
        ("git_rev", Json::str(lyric::metrics::build::git_rev())),
        (
            "host_parallelism",
            Json::int(
                lyric::metrics::build::host_parallelism()
                    .parse()
                    .unwrap_or(1),
            ),
        ),
    ])
}

/// The `GET /debug/caches` body: occupancy of the process-global memo
/// caches and the state of the server database's store index.
fn caches_json(db: &Database) -> Json {
    let occ = |o: lyric::constraint::CacheOccupancy| {
        Json::obj([
            ("entries", Json::int(o.entries as u64)),
            ("capacity", Json::int(o.capacity as u64)),
        ])
    };
    let data_generation = db.data_generation();
    Json::obj([
        ("generation", Json::int(lyric::engine::generation())),
        ("sat", occ(lyric::constraint::sat_occupancy())),
        ("entail", occ(lyric::constraint::entail_occupancy())),
        ("boxes", occ(lyric::constraint::box_occupancy())),
        (
            "index",
            Json::obj([
                ("data_generation", Json::int(data_generation)),
                (
                    "built",
                    Json::Bool(db.index_slot().get(data_generation).is_some()),
                ),
                ("objects", Json::int(db.num_objects() as u64)),
            ]),
        ),
    ])
}

fn handle_connection(
    mut stream: TcpStream,
    db: &Database,
    opts: &ExecOptions,
) -> std::io::Result<()> {
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(msg) => {
            let body = Json::obj([("error", Json::str(msg))]).to_string();
            return write_response(&mut stream, 400, "Bad Request", "application/json", &body);
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => write_response(&mut stream, 200, "OK", "text/plain", "ok\n"),
        ("GET", "/metrics") => write_response(
            &mut stream,
            200,
            "OK",
            "text/plain; version=0.0.4",
            &lyric::metrics::render_prometheus(),
        ),
        ("GET", "/version") => write_response(
            &mut stream,
            200,
            "OK",
            "application/json",
            &version_json().to_string(),
        ),
        ("GET", "/profiles") => write_response(
            &mut stream,
            200,
            "OK",
            "application/json",
            &lyric::metrics::profile::snapshot_json(),
        ),
        ("GET", "/debug/inflight") => write_response(
            &mut stream,
            200,
            "OK",
            "application/json",
            &lyric::flight::inflight::to_json().to_string(),
        ),
        ("GET", "/debug/flight") => write_response(
            &mut stream,
            200,
            "OK",
            "application/json",
            &lyric::flight::recorder::to_json().to_string(),
        ),
        ("GET", "/debug/caches") => write_response(
            &mut stream,
            200,
            "OK",
            "application/json",
            &caches_json(db).to_string(),
        ),
        ("POST", "/query") => match run_query(db, opts, &request.body) {
            Ok(json) => write_response(
                &mut stream,
                200,
                "OK",
                "application/json",
                &json.to_string(),
            ),
            Err(msg) => {
                let body = Json::obj([("error", Json::str(msg))]).to_string();
                write_response(&mut stream, 400, "Bad Request", "application/json", &body)
            }
        },
        ("GET" | "POST", _) => {
            let body = Json::obj([
                (
                    "error",
                    Json::str(format!("unknown path {:?}", request.path)),
                ),
                (
                    "endpoints",
                    Json::Arr(ENDPOINTS.iter().map(|e| Json::str(*e)).collect()),
                ),
            ])
            .to_string();
            write_response(&mut stream, 404, "Not Found", "application/json", &body)
        }
        _ => write_response(&mut stream, 405, "Method Not Allowed", "text/plain", ""),
    }
}

/// A tiny HTTP/1.0 client for the smoke binary and tests: send `method
/// path` with `body` to `addr`, returning `(status, body)`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let request = format!(
        "{method} {path} HTTP/1.0\r\nHost: lyric\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let payload = match response.find("\r\n\r\n") {
        Some(i) => response[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server() -> SocketAddr {
        let db = Arc::new(lyric::paper_example::database());
        let opts = ExecOptions::default().with_threads(2);
        Server::bind("127.0.0.1:0", db, opts)
            .expect("bind ephemeral port")
            .spawn()
            .expect("spawn accept loop")
    }

    #[test]
    fn healthz_and_unknown_paths() {
        let addr = test_server();
        let (status, body) = http_request(addr, "GET", "/healthz", "").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        // 404s are structured JSON enumerating every endpoint.
        let (status, body) = http_request(addr, "GET", "/nope", "").unwrap();
        assert_eq!(status, 404);
        let json = lyric::trace::json::parse(&body).expect("404 body is valid JSON");
        assert!(json
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("/nope")));
        let endpoints = json.get("endpoints").and_then(Json::as_arr).unwrap();
        assert_eq!(endpoints.len(), ENDPOINTS.len());
        assert!(endpoints
            .iter()
            .any(|e| e.as_str() == Some("GET /debug/inflight")));
    }

    #[test]
    fn version_and_debug_surfaces_serve_valid_json() {
        let addr = test_server();
        let (status, body) = http_request(addr, "GET", "/version", "").unwrap();
        assert_eq!(status, 200);
        let json = lyric::trace::json::parse(&body).expect("version is valid JSON");
        for key in ["version", "git_rev", "host_parallelism"] {
            assert!(json.get(key).is_some(), "missing {key}");
        }

        // A query so the recorder ring has something to show.
        let q = "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]";
        let (status, _) = http_request(addr, "POST", "/query", q).unwrap();
        assert_eq!(status, 200);

        let (status, body) = http_request(addr, "GET", "/debug/flight", "").unwrap();
        assert_eq!(status, 200);
        let json = lyric::trace::json::parse(&body).expect("flight is valid JSON");
        assert!(json.get("queries").and_then(Json::as_arr).is_some());
        assert!(json.get("query_capacity").is_some());

        let (status, body) = http_request(addr, "GET", "/debug/inflight", "").unwrap();
        assert_eq!(status, 200);
        let json = lyric::trace::json::parse(&body).expect("inflight is valid JSON");
        assert!(json.get("inflight").is_some());

        let (status, body) = http_request(addr, "GET", "/debug/caches", "").unwrap();
        assert_eq!(status, 200);
        let json = lyric::trace::json::parse(&body).expect("caches is valid JSON");
        for key in ["generation", "sat", "entail", "boxes", "index"] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        let sat = json.get("sat").unwrap();
        assert!(sat.get("entries").is_some() && sat.get("capacity").is_some());
    }

    #[test]
    fn metrics_endpoint_serves_parseable_prometheus() {
        let addr = test_server();
        let (status, body) = http_request(addr, "GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        lyric::metrics::prometheus::parse(&body).expect("scrape parses");
    }

    #[test]
    fn query_endpoint_answers_and_rejects() {
        let addr = test_server();
        let q = "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]";
        let (status, body) = http_request(addr, "POST", "/query", q).unwrap();
        assert_eq!(status, 200, "body: {body}");
        let json = lyric::trace::json::parse(&body).expect("response is valid JSON");
        assert!(json.get("row_count").is_some());
        assert!(json.get("stats").is_some());

        let (status, body) = http_request(addr, "POST", "/query", "SELECT nonsense ???").unwrap();
        assert_eq!(status, 400);
        let json = lyric::trace::json::parse(&body).expect("error body is valid JSON");
        assert!(json.get("error").is_some());
    }

    #[test]
    fn json_bodies_run_and_explain() {
        let addr = test_server();
        // JSON envelope without explain: same answer shape as raw text.
        let body = "{\"query\": \"SELECT Y FROM Desk X WHERE X.drawer.extent[Y]\"}";
        let (status, reply) = http_request(addr, "POST", "/query", body).unwrap();
        assert_eq!(status, 200, "body: {reply}");
        let json = lyric::trace::json::parse(&reply).unwrap();
        assert!(json.get("plan").is_none(), "no plan unless explain=true");

        // explain=true adds a validated plan document.
        let body =
            "{\"query\": \"SELECT Y FROM Desk X WHERE X.drawer.extent[Y]\", \"explain\": true}";
        let (status, reply) = http_request(addr, "POST", "/query", body).unwrap();
        assert_eq!(status, 200, "body: {reply}");
        let json = lyric::trace::json::parse(&reply).unwrap();
        let plan = json.get("plan").expect("explain=true returns a plan");
        lyric::trace::plan::validate_plan_json(&plan.to_string()).expect("plan validates");
        assert!(plan.get("total_us").is_some(), "plan is analyzed");
        // The explained run fed the cost-profile store.
        let (status, profiles) = http_request(addr, "GET", "/profiles", "").unwrap();
        assert_eq!(status, 200);
        let doc = lyric::trace::json::parse(&profiles).unwrap();
        assert!(doc.get("profiles").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn malformed_json_bodies_are_structured_400s() {
        let addr = test_server();
        for (body, needle) in [
            (
                "{\"query\": \"SELECT D FROM Desk D\", \"expalin\": true}",
                "unknown member",
            ),
            (
                "{\"query\": \"SELECT D FROM Desk D\", \"explain\": 1}",
                "must be a boolean",
            ),
            ("{\"query\": 42}", "must be a string"),
            ("{\"explain\": true}", "lacks a \"query\""),
            ("{\"query\": \"SELECT D FROM Desk D\"", "malformed JSON"),
        ] {
            let (status, reply) = http_request(addr, "POST", "/query", body).unwrap();
            assert_eq!(status, 400, "body {body:?} should be rejected: {reply}");
            let json = lyric::trace::json::parse(&reply).expect("error body is valid JSON");
            let msg = json
                .get("error")
                .and_then(Json::as_str)
                .expect("error member");
            assert!(msg.contains(needle), "{body:?}: {msg}");
        }
    }
}
