//! `lyric-serve` — a scrapeable LyriC query server.
//!
//! ```text
//! lyric-serve [--addr HOST:PORT] [--db FILE] [--save-db FILE] [--threads N] [--version]
//! ```
//!
//! Serves `GET /metrics` (Prometheus text format 0.0.4), `GET /healthz`,
//! `GET /version`, the `/debug/*` introspection surfaces (in-flight
//! registry, flight recorder, cache occupancy — see `lyric_serve`), and
//! `POST /query` (body: a LyriC `SELECT` statement; response: JSON).
//! With no `--db`, the paper's office-design database (Figures 1 and 2)
//! is served. `--db` accepts either format — binary snapshots (sniffed by
//! their 8-byte magic) or the textual `LYRIC-DB 1` dump. `--save-db FILE`
//! writes the loaded database back out as a verified binary snapshot and
//! exits instead of serving, so it doubles as a text → snapshot
//! converter. `--addr` defaults to `127.0.0.1:7171`; use port 0 for an
//! ephemeral port (the bound address is printed on startup).

use lyric::snapshot::SnapshotExt;
use lyric::ExecOptions;
use lyric_serve::Server;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: lyric-serve [--addr HOST:PORT] [--db FILE] [--save-db FILE] [--threads N] [--version]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut db_path: Option<String> = None;
    let mut save_path: Option<String> = None;
    let mut opts = ExecOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--db" => db_path = Some(args.next().unwrap_or_else(|| usage())),
            "--save-db" => save_path = Some(args.next().unwrap_or_else(|| usage())),
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| usage());
                opts = opts.with_threads(n);
            }
            "--version" | "-V" => {
                println!(
                    "lyric-serve {} ({})",
                    lyric::metrics::build::version(),
                    lyric::metrics::build::git_rev()
                );
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("lyric-serve: unknown argument '{other}'");
                usage();
            }
        }
    }

    let db = match &db_path {
        Some(path) => {
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("lyric-serve: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Sniff the format: binary snapshots open with the container
            // magic; anything else is the textual dump.
            let loaded = if bytes.starts_with(&lyric::store::snapshot::MAGIC) {
                lyric::snapshot::from_bytes(&bytes)
            } else {
                match String::from_utf8(bytes) {
                    Ok(text) => lyric::storage::load(&text),
                    Err(_) => {
                        eprintln!("lyric-serve: {path} is neither a snapshot nor UTF-8 text");
                        return ExitCode::FAILURE;
                    }
                }
            };
            match loaded {
                Ok(db) => db,
                Err(e) => {
                    eprintln!("lyric-serve: cannot load {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => lyric::paper_example::database(),
    };

    if let Some(path) = &save_path {
        return match db.save_snapshot(path) {
            Ok(()) => {
                eprintln!("lyric-serve: wrote snapshot {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("lyric-serve: cannot write {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Long-lived surface: publish the build-identity gauge and default
    // the flight recorder's event tee on (explicit env still wins).
    lyric::metrics::build::register_build_info();
    lyric::flight::recorder::enable_events_default();

    let server = match Server::bind(&addr, Arc::new(db), opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lyric-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(bound) => {
            eprintln!(
                "lyric-serve: listening on http://{bound} ({})",
                lyric_serve::ENDPOINTS.join(", ")
            )
        }
        Err(e) => eprintln!("lyric-serve: listening ({e})"),
    }
    if let Err(e) = server.run() {
        eprintln!("lyric-serve: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
