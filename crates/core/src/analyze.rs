//! Static semantic analysis of LyriC queries (the `lyric-analyze` passes).
//!
//! The analyzer runs on the parsed AST plus the schema — it never touches
//! instance data — and mirrors the evaluator's resolution rules exactly so
//! that everything it rejects would have failed (or silently misbehaved)
//! at runtime. Five passes share one walk:
//!
//! 1. **Name resolution** — FROM classes, view parents and SIGNATURE
//!    targets must exist ([`codes::UNKNOWN_CLASS`]); path attributes are
//!    resolved step by step against the IS-A hierarchy
//!    ([`codes::UNKNOWN_ATTRIBUTE`]); variable roots must be bindable by
//!    the left-to-right evaluation order ([`codes::UNBOUND_VARIABLE`]).
//! 2. **Type checking** — every path gets a static type (builtin scalar,
//!    object of a class, or `CST(n)`); pseudo-linear atoms need numeric
//!    paths ([`codes::NON_NUMERIC`], [`codes::NONLINEAR_PRODUCT`]); `|=`
//!    and satisfiability predicates need CST-valued paths
//!    ([`codes::NOT_A_CST`]); explicit CST variable lists must match the
//!    declared dimension ([`codes::DIMENSION_MISMATCH`],
//!    [`codes::OBJECTIVE_DIMENSION`]).
//! 3. **Family inference** — the minimal §3.1 constraint family of each
//!    formula, checked against the closure table
//!    ([`lyric_constraint::CstFamily::apply`]): negation outside the
//!    conjunctive family is an error ([`codes::NON_CONJUNCTIVE_NEGATION`]);
//!    strict mode also flags opaque negations, unrestricted projections
//!    and `≠`-elimination ([`codes::OPAQUE_NEGATION`],
//!    [`codes::UNRESTRICTED_PROJECTION`],
//!    [`codes::DISEQUATION_ELIMINATION`]).
//! 4. **Scope well-formedness** — duplicate projection / FROM variables
//!    ([`codes::DUPLICATE_CST_VARIABLE`],
//!    [`codes::DUPLICATE_FROM_VARIABLE`]).
//! 5. **Semantic lints** — interval analysis over single-variable atoms
//!    finds trivially unsatisfiable conjuncts ([`codes::TRIVIALLY_UNSAT`]);
//!    the multi-variable box domain (`lyric_absint`) then propagates
//!    bounds *across* atoms, proving whole conjunctions empty
//!    ([`codes::STATIC_UNSAT`]), OR branches dead
//!    ([`codes::DEAD_DISJUNCT`]) and comparisons redundant
//!    ([`codes::STATIC_ENTAILED`]); unused FROM bindings warn
//!    ([`codes::UNUSED_BINDING`]); the opt-in deep check instantiates
//!    database-free formulas through the LP engine under a small budget
//!    ([`codes::LP_UNSAT`]) — demoted to a fallback for whatever the box
//!    domain already decided.
//!
//! The binding model is *possibly-bound*: a variable counts as bound at a
//! use point if **some** evaluation path can have bound it (OR unions its
//! branches' bindings), so the analyzer never errors on a query the
//! evaluator could complete. Conversely it only types what it can prove:
//! selector variables over unknown attributes, attribute variables and
//! ground oids all type as *unknown* and silence downstream checks.

use crate::ast::{
    Arith, CRelOp, CmpOp, CmpOperand, Cond, Formula, PathExpr, Query, SelectQuery, SelectValue,
    Selector, Step,
};
use crate::diag::{codes, Diagnostic, Severity};
use crate::span::Span;
use lyric_arith::Rational;
use lyric_constraint::{Atom, CstFamily, FamilyOp, IntervalBox, LinExpr, RelOp};
use lyric_oodb::{AttrDef, AttrTarget, Schema};
use std::collections::{BTreeMap, BTreeSet};

/// Options controlling the analyzer.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzerOptions {
    /// Enable strict lints: opaque negation, unrestricted projection and
    /// `≠`-elimination warnings (LYA021–LYA023).
    pub strict: bool,
    /// Enable the LP-backed deep unsatisfiability check (LYA041), which
    /// instantiates database-free formulas under a small engine budget.
    pub deep_unsat: bool,
}

impl AnalyzerOptions {
    /// Strict mode: all closure-rule lints on.
    pub fn strict() -> AnalyzerOptions {
        AnalyzerOptions {
            strict: true,
            deep_unsat: false,
        }
    }

    /// Strict mode plus the LP-backed deep unsatisfiability check.
    pub fn deep() -> AnalyzerOptions {
        AnalyzerOptions {
            strict: true,
            deep_unsat: true,
        }
    }
}

/// Analyze a parsed query against a schema. Returns all findings, sorted
/// by source position; [`Severity::Error`] findings are the ones
/// [`crate::execute`] rejects before evaluation.
pub fn analyze(schema: &Schema, query: &Query, opts: &AnalyzerOptions) -> Vec<Diagnostic> {
    let mut a = Analyzer {
        schema,
        opts,
        diags: Vec::new(),
        declared: BTreeSet::new(),
        bound: BTreeSet::new(),
        types: BTreeMap::new(),
        deep: Vec::new(),
    };
    match query {
        Query::Select(q) => a.select(q, None),
        Query::CreateView(v) => {
            if !schema.has_class(&v.parent) && !v.select.from.iter().any(|f| f.var == v.parent) {
                a.diags.push(
                    Diagnostic::error(
                        codes::UNKNOWN_CLASS,
                        v.parent_span,
                        format!("unknown view parent class {}", v.parent),
                    )
                    .with_help("the SUBCLASS OF target must be an existing class"),
                );
            }
            a.select(&v.select, Some(&v.name));
        }
    }
    a.finish()
}

/// Analyze source text: lexical and syntax errors surface as a single
/// [`codes::SYNTAX`] diagnostic, otherwise the parsed query is analyzed.
pub fn analyze_src(schema: &Schema, src: &str, opts: &AnalyzerOptions) -> Vec<Diagnostic> {
    use crate::error::LyricError;
    match crate::parser::parse_query(src) {
        Ok(q) => analyze(schema, &q, opts),
        Err(LyricError::Lex(e)) => {
            vec![Diagnostic::error(
                codes::SYNTAX,
                e.span,
                format!("lex error: {}", e.message),
            )]
        }
        Err(LyricError::Parse(e)) => {
            let mut d =
                Diagnostic::error(codes::SYNTAX, e.span, format!("parse error: {}", e.message));
            if !e.expected.is_empty() {
                d = d.with_help(format!("expected {}", e.expected.join(" or ")));
            }
            vec![d]
        }
        Err(other) => vec![Diagnostic::error(
            codes::SYNTAX,
            Span::DUMMY,
            other.to_string(),
        )],
    }
}

/// The static type of a path value, as far as the schema determines it.
#[derive(Debug, Clone, PartialEq)]
enum Ty {
    /// An instance of a user class.
    Object(String),
    /// A builtin scalar (`int`, `real`, `string`, `bool`).
    Builtin(String),
    /// A constraint object; the declared schema variables when the
    /// attribute target spells them out.
    Cst {
        dim: usize,
        vars: Option<Vec<String>>,
    },
    /// Anything the schema cannot pin down (ground oids, attribute
    /// variables, dynamic attribute names). Silences downstream checks.
    Unknown,
}

impl Ty {
    /// `Some(true)` definitely numeric, `Some(false)` definitely not,
    /// `None` unknown.
    fn numeric(&self) -> Option<bool> {
        match self {
            Ty::Builtin(b) => match b.as_str() {
                "int" | "real" => Some(true),
                "string" | "bool" => Some(false),
                _ => None,
            },
            Ty::Object(_) | Ty::Cst { .. } => Some(false),
            Ty::Unknown => None,
        }
    }

    fn describe(&self) -> String {
        match self {
            Ty::Object(c) => format!("an object of class {c}"),
            Ty::Builtin(b) => format!("a {b} value"),
            Ty::Cst { dim, .. } => format!("a CST({dim}) constraint object"),
            Ty::Unknown => "a value of unknown type".to_string(),
        }
    }
}

/// What the family-inference walk knows about a sub-formula.
struct FamInfo {
    /// The minimal §3.1 family, when statically known.
    fam: Option<CstFamily>,
    /// The formula's free constraint variables, when statically known.
    vars: Option<BTreeSet<String>>,
    /// Whether the formula syntactically contains a `!=` atom.
    neq: bool,
}

/// One accumulated interval bound: the value, whether the bound is
/// strict, and the span of the atom that imposed it.
type Bound = (Rational, bool, Span);

struct Analyzer<'a> {
    schema: &'a Schema,
    opts: &'a AnalyzerOptions,
    diags: Vec<Diagnostic>,
    /// Variables the evaluator declares up front: FROM variables, the
    /// view-name variable, and every bracket selector variable anywhere in
    /// the query (mirrors `Ctx::new`).
    declared: BTreeSet<String>,
    /// Variables possibly bound at the current analysis point.
    bound: BTreeSet<String>,
    types: BTreeMap<String, Ty>,
    /// Database-free formulas queued for the LP-backed deep check.
    deep: Vec<Formula>,
}

impl Analyzer<'_> {
    // ------------------------------------------------------------ driver

    fn select(&mut self, q: &SelectQuery, view_var: Option<&str>) {
        // Mirror Ctx::new: declare FROM vars, the view variable, and all
        // bracket selector variables before any left-to-right binding.
        self.declared.extend(q.from.iter().map(|f| f.var.clone()));
        if let Some(v) = view_var {
            self.declared.insert(v.to_string());
        }
        scan_query(q, &mut self.declared);

        // FROM: classes must exist; variables bind in clause order.
        let mut seen_from: BTreeSet<&str> = BTreeSet::new();
        for f in &q.from {
            if !self.schema.has_class(&f.class) {
                self.diags.push(
                    Diagnostic::error(
                        codes::UNKNOWN_CLASS,
                        f.class_span,
                        format!("unknown class {}", f.class),
                    )
                    .with_help("FROM ranges over the extent of an existing class"),
                );
            }
            if !seen_from.insert(&f.var) {
                self.diags.push(
                    Diagnostic::error(
                        codes::DUPLICATE_FROM_VARIABLE,
                        f.var_span,
                        format!("FROM variable {} is bound more than once", f.var),
                    )
                    .with_help("the second binding silently shadows the first"),
                );
            }
            self.bind(&f.var, Ty::Object(f.class.clone()));
        }

        // SIGNATURE: target classes must exist.
        for s in &q.signature {
            if !self.schema.has_class(&s.class) {
                self.diags.push(Diagnostic::error(
                    codes::UNKNOWN_CLASS,
                    s.class_span,
                    format!("unknown SIGNATURE target class {}", s.class),
                ));
            }
        }

        // WHERE: conditions both check and (possibly) bind.
        if let Some(w) = &q.where_clause {
            self.cond(w);
        }

        // OID FUNCTION variables must be bound by the time output oids
        // are minted (i.e. after FROM and WHERE).
        if let Some(vars) = &q.oid_function {
            for (i, v) in vars.iter().enumerate() {
                if !self.bound.contains(v) {
                    let span = q.oid_function_spans.get(i).copied().unwrap_or(Span::DUMMY);
                    self.diags.push(
                        Diagnostic::error(
                            codes::UNBOUND_VARIABLE,
                            span,
                            format!("OID FUNCTION variable {v} is never bound"),
                        )
                        .with_help("oid functions range over FROM or selector bindings"),
                    );
                }
            }
        }

        // SELECT items evaluate independently per row: bindings made
        // inside one item are not visible to the next.
        for item in &q.items {
            let snap = self.snapshot();
            match &item.value {
                SelectValue::Path(p) => {
                    self.path(p);
                }
                SelectValue::Formula(f) => {
                    self.formula_root(f);
                }
                SelectValue::Optimize {
                    objective, formula, ..
                } => {
                    let info = self.formula_root(formula);
                    self.chain_arith(objective, formula.span(), &mut BTreeSet::new());
                    self.check_objective(objective, formula, &info, item.span);
                }
            }
            self.restore(snap);
        }

        // Unused FROM bindings (warning): a binding no other clause
        // mentions does nothing but multiply the cross product.
        let used = used_names(q, view_var);
        for f in &q.from {
            if !used.contains(&f.var) {
                self.diags.push(
                    Diagnostic::warning(
                        codes::UNUSED_BINDING,
                        f.var_span,
                        format!("FROM variable {} is never used", f.var),
                    )
                    .with_help("every extent member still multiplies the result rows"),
                );
            }
        }
    }

    fn finish(mut self) -> Vec<Diagnostic> {
        self.deep_check();
        let mut diags = self.diags;
        diags.sort_by(|a, b| (a.span.start, a.code).cmp(&(b.span.start, b.code)));
        diags
    }

    // ---------------------------------------------------------- bindings

    fn bind(&mut self, var: &str, ty: Ty) {
        self.bound.insert(var.to_string());
        self.types.insert(var.to_string(), ty);
    }

    fn snapshot(&self) -> (BTreeSet<String>, BTreeMap<String, Ty>) {
        (self.bound.clone(), self.types.clone())
    }

    fn restore(&mut self, snap: (BTreeSet<String>, BTreeMap<String, Ty>)) {
        self.bound = snap.0;
        self.types = snap.1;
    }

    // -------------------------------------------------------- conditions

    fn cond(&mut self, c: &Cond) {
        match c {
            Cond::And(a, b) => {
                // AND threads bindings left to right.
                self.cond(a);
                self.cond(b);
            }
            Cond::Or(a, b) => {
                // OR unions its branches' bindings: a variable bound in
                // either branch is possibly bound afterwards.
                let base = self.snapshot();
                self.cond(a);
                let after_a = self.snapshot();
                self.restore(base);
                self.cond(b);
                for v in after_a.0 {
                    if !self.bound.contains(&v) {
                        self.bound.insert(v.clone());
                        if let Some(ty) = after_a.1.get(&v) {
                            self.types.insert(v, ty.clone());
                        }
                    }
                }
            }
            Cond::Not(a) => {
                // NOT is an emptiness test: checks run, bindings do not
                // escape.
                let snap = self.snapshot();
                self.cond(a);
                self.restore(snap);
            }
            Cond::PathPred(p) => {
                self.path(p);
            }
            Cond::Compare { lhs, op, rhs } => {
                // Comparisons evaluate operands independently and discard
                // their binding extensions.
                for operand in [lhs, rhs] {
                    let snap = self.snapshot();
                    let ty = self.operand(operand);
                    self.restore(snap);
                    if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
                        && ty.numeric() == Some(false)
                    {
                        self.diags.push(
                            Diagnostic::error(
                                codes::NON_NUMERIC,
                                operand.span(),
                                format!(
                                    "ordered comparison over {}, which is never numeric",
                                    ty.describe()
                                ),
                            )
                            .with_help("<, <=, > and >= compare numeric singletons"),
                        );
                    }
                }
            }
            Cond::Sat(f) => {
                let snap = self.snapshot();
                self.formula_root(f);
                self.restore(snap);
            }
            Cond::Entails(a, b) => {
                for f in [a, b] {
                    let snap = self.snapshot();
                    self.formula(f);
                    self.restore(snap);
                }
            }
        }
    }

    fn operand(&mut self, o: &CmpOperand) -> Ty {
        match o {
            CmpOperand::Path(p) => self.path(p),
            CmpOperand::Num(_) => Ty::Builtin("real".into()),
            CmpOperand::Str(_) => Ty::Builtin("string".into()),
            CmpOperand::Bool(_) => Ty::Builtin("bool".into()),
        }
    }

    // ------------------------------------------------------------- paths

    /// Walk a path step by step, mirroring `eval_path`'s resolution rules,
    /// exporting selector/attribute-variable bindings and returning the
    /// static type of the tail value.
    fn path(&mut self, p: &PathExpr) -> Ty {
        let mut ty = match &p.root {
            Selector::Var(v) => {
                if self.bound.contains(v) {
                    self.types.get(v).cloned().unwrap_or(Ty::Unknown)
                } else if self.declared.contains(v) {
                    self.diags.push(
                        Diagnostic::error(
                            codes::UNBOUND_VARIABLE,
                            p.span,
                            format!("variable {v} is used before anything can bind it"),
                        )
                        .with_help(
                            "FROM binds first, then WHERE left to right; move the binding \
                             occurrence before this use",
                        ),
                    );
                    Ty::Unknown
                } else {
                    // Undeclared names are ground oids looked up in the
                    // database — invisible to static analysis.
                    Ty::Unknown
                }
            }
            Selector::Lit(_) => Ty::Unknown,
        };
        for step in &p.steps {
            let step_ty = self.step(&ty, step);
            if let Some(Selector::Var(v)) = &step.selector {
                self.bind(v, step_ty.clone());
            }
            ty = step_ty;
        }
        ty
    }

    /// Resolve one step against the static type of the value so far,
    /// mirroring the evaluator's order: schema attribute, then
    /// bound-variable attribute name, then uppercase attribute variable.
    fn step(&mut self, ty: &Ty, step: &Step) -> Ty {
        let class = match ty {
            Ty::Object(c) => c.clone(),
            Ty::Builtin(b) => {
                self.diags.push(
                    Diagnostic::error(
                        codes::UNKNOWN_ATTRIBUTE,
                        step.span,
                        format!(
                            "{} has no attribute {}",
                            Ty::Builtin(b.clone()).describe(),
                            step.attr
                        ),
                    )
                    .with_help("builtin scalars have no attributes; this path is always empty"),
                );
                return Ty::Unknown;
            }
            Ty::Cst { dim, .. } => {
                self.diags.push(
                    Diagnostic::error(
                        codes::UNKNOWN_ATTRIBUTE,
                        step.span,
                        format!(
                            "a CST({dim}) constraint object has no attribute {}",
                            step.attr
                        ),
                    )
                    .with_help("constraint objects are queried with |= and SAT, not paths"),
                );
                return Ty::Unknown;
            }
            Ty::Unknown => return Ty::Unknown,
        };
        // 1. A schema attribute visible from the static class.
        if let Some(def) = self.schema.attribute(&class, &step.attr) {
            return self.target_ty(def);
        }
        // 2. A bound (or at least declared) variable holding the
        //    attribute name dynamically.
        if self.bound.contains(&step.attr) || self.declared.contains(&step.attr) {
            return Ty::Unknown;
        }
        // 3. An uppercase attribute variable: it binds to the attribute
        //    *name* (a string) and the value's type is unknown.
        if step
            .attr
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase())
        {
            self.bind(&step.attr, Ty::Builtin("string".into()));
            return Ty::Unknown;
        }
        // 4. The extent of `class` may hold instances of subclasses (and,
        //    for view classes, of any class below an ancestor), so an
        //    attribute declared anywhere in the subclass cone of an
        //    ancestor still resolves dynamically.
        let mut cone_defs: Vec<&AttrDef> = Vec::new();
        for anc in self.schema.ancestors(&class) {
            for sub in self.schema.subclasses_of(anc) {
                if let Some(cd) = self.schema.class(sub) {
                    if let Some(def) = cd.attributes.get(&step.attr) {
                        cone_defs.push(def);
                    }
                }
            }
        }
        if !cone_defs.is_empty() {
            let first = self.target_ty(cone_defs[0]);
            let all_agree = cone_defs.iter().all(|d| self.target_ty(d) == first);
            return if all_agree { first } else { Ty::Unknown };
        }
        // 5. Nothing can resolve this attribute: the same search the
        //    evaluator would report in `UnknownAttribute`.
        let searched = self.schema.ancestors(&class);
        let chain = if searched.is_empty() {
            class.clone()
        } else {
            searched.join(" -> ")
        };
        self.diags.push(
            Diagnostic::error(
                codes::UNKNOWN_ATTRIBUTE,
                step.span,
                format!("class {class} has no attribute {}", step.attr),
            )
            .with_help(format!("searched IS-A chain: {chain}")),
        );
        Ty::Unknown
    }

    fn target_ty(&self, def: &AttrDef) -> Ty {
        match &def.target {
            AttrTarget::Cst { vars } => Ty::Cst {
                dim: vars.len(),
                vars: Some(vars.iter().map(|v| v.name().to_string()).collect()),
            },
            AttrTarget::Class { class, .. } => match class.as_str() {
                "int" | "real" | "string" | "bool" => Ty::Builtin(class.clone()),
                "object" => Ty::Unknown,
                c => {
                    if self.schema.has_class(c) {
                        Ty::Object(c.to_string())
                    } else {
                        Ty::Unknown
                    }
                }
            },
        }
    }

    // ---------------------------------------------------------- formulas

    /// Analyze a top-level formula occurrence: the recursive family /
    /// type walk plus the whole-formula lints (interval analysis and the
    /// deep-check queue).
    fn formula_root(&mut self, f: &Formula) -> FamInfo {
        let info = self.formula(f);
        self.unsat_scan(f);
        self.box_scan(f, codes::STATIC_UNSAT);
        if self.opts.deep_unsat && self.database_free(f) {
            self.deep.push(f.clone());
        }
        info
    }

    fn formula(&mut self, f: &Formula) -> FamInfo {
        match f {
            Formula::And(a, b) => {
                let fa = self.formula(a);
                let fb = self.formula(b);
                FamInfo {
                    fam: join_fams(fa.fam, fb.fam, FamilyOp::Conjoin),
                    vars: union_vars(fa.vars, fb.vars),
                    neq: fa.neq || fb.neq,
                }
            }
            Formula::Or(a, b) => {
                let fa = self.formula(a);
                // The runtime `or()` dedups syntactically identical
                // disjuncts, so `φ OR φ` stays in φ's family.
                if a == b {
                    return fa;
                }
                let fb = self.formula(b);
                FamInfo {
                    fam: join_fams(fa.fam, fb.fam, FamilyOp::Disjoin),
                    vars: union_vars(fa.vars, fb.vars),
                    neq: fa.neq || fb.neq,
                }
            }
            Formula::Not(a) => {
                let fa = self.formula(a);
                match fa.fam {
                    Some(fam) if CstFamily::apply(fam, FamilyOp::Negate, None).is_none() => {
                        self.diags.push(
                            Diagnostic::error(
                                codes::NON_CONJUNCTIVE_NEGATION,
                                a.span(),
                                format!(
                                    "negation of a {} formula is outside the §3.1 closure",
                                    fam.name()
                                ),
                            )
                            .with_help(
                                "only the conjunctive family is closed under negation; \
                                 push NOT inward or split the disjunction",
                            ),
                        );
                    }
                    Some(_) => {}
                    None if self.opts.strict => {
                        self.diags.push(
                            Diagnostic::warning(
                                codes::OPAQUE_NEGATION,
                                a.span(),
                                "negation of a stored constraint object whose family is \
                                 unknown statically"
                                    .to_string(),
                            )
                            .with_help(
                                "negation fails at runtime unless the object is conjunctive",
                            ),
                        );
                    }
                    None => {}
                }
                FamInfo {
                    fam: fa
                        .fam
                        .and_then(|fam| CstFamily::apply(fam, FamilyOp::Negate, None)),
                    vars: fa.vars,
                    neq: fa.neq,
                }
            }
            Formula::Proj { vars, body, span } => {
                self.check_dup_vars(vars, *span);
                let fb = self.formula(body);
                let kept: BTreeSet<String> = vars.iter().cloned().collect();
                let mut restricted = true;
                if let Some(bvars) = &fb.vars {
                    let eliminated: Vec<&String> =
                        bvars.iter().filter(|v| !kept.contains(*v)).collect();
                    let k = eliminated.len();
                    restricted = k <= 1 || kept.len() <= 1;
                    if self.opts.strict && !restricted {
                        self.diags.push(
                            Diagnostic::warning(
                                codes::UNRESTRICTED_PROJECTION,
                                *span,
                                format!(
                                    "projection eliminates {k} of {} variables while keeping \
                                     {}: outside the restricted-projection closure (§3.1)",
                                    bvars.len(),
                                    kept.len()
                                ),
                            )
                            .with_help("evaluation falls back to lazy existential quantifiers"),
                        );
                    }
                    if self.opts.strict && fb.neq && k >= 1 {
                        self.diags.push(
                            Diagnostic::warning(
                                codes::DISEQUATION_ELIMINATION,
                                *span,
                                "projection eliminates variables from a formula with a != \
                                 atom"
                                    .to_string(),
                            )
                            .with_help(
                                "eliminating a disequation needs case splitting, which can \
                                 leave the conjunctive family",
                            ),
                        );
                    }
                }
                let op = if restricted {
                    FamilyOp::ProjectRestricted
                } else {
                    FamilyOp::Project
                };
                FamInfo {
                    fam: fb.fam.and_then(|fam| CstFamily::apply(fam, op, None)),
                    vars: Some(kept),
                    neq: fb.neq,
                }
            }
            Formula::Pred { path, vars } => {
                let ty = self.path(path);
                if let Some(vs) = vars {
                    self.check_dup_vars(vs, path.span);
                }
                let dim = match &ty {
                    Ty::Cst { dim, .. } => Some(*dim),
                    Ty::Object(c) => {
                        let cst_dim = self
                            .schema
                            .subclasses_of(c)
                            .iter()
                            .find_map(|s| self.schema.class(s).and_then(|cd| cd.cst_dim));
                        if cst_dim.is_none() {
                            self.diags.push(
                                Diagnostic::error(
                                    codes::NOT_A_CST,
                                    path.span,
                                    format!(
                                        "{} is used as a constraint object, but no class in \
                                         its cone is a CST class",
                                        ty.describe()
                                    ),
                                )
                                .with_help("CST references resolve paths to constraint objects"),
                            );
                        }
                        // The dimension is only trusted when the static
                        // class itself declares it.
                        self.schema.class(c).and_then(|cd| cd.cst_dim)
                    }
                    Ty::Builtin(_) => {
                        self.diags.push(
                            Diagnostic::error(
                                codes::NOT_A_CST,
                                path.span,
                                format!("{} is not a constraint object", ty.describe()),
                            )
                            .with_help("CST references resolve paths to constraint objects"),
                        );
                        None
                    }
                    Ty::Unknown => None,
                };
                if let (Some(vs), Some(d)) = (vars, dim) {
                    if vs.len() != d {
                        self.diags.push(
                            Diagnostic::error(
                                codes::DIMENSION_MISMATCH,
                                path.span,
                                format!(
                                    "CST reference lists {} variables but the object's \
                                     dimension is {d}",
                                    vs.len()
                                ),
                            )
                            .with_help("the variable list renames all dimensions positionally"),
                        );
                    }
                }
                let fvars: Option<BTreeSet<String>> = match vars {
                    Some(vs) => Some(vs.iter().cloned().collect()),
                    None => match &ty {
                        Ty::Cst {
                            vars: Some(names), ..
                        } => Some(names.iter().cloned().collect()),
                        _ => None,
                    },
                };
                // The stored object's family is a runtime property.
                FamInfo {
                    fam: None,
                    vars: fvars,
                    neq: false,
                }
            }
            Formula::Chain { first, rest, span } => {
                let mut cvars: BTreeSet<String> = BTreeSet::new();
                self.chain_arith(first, *span, &mut cvars);
                let mut neq = false;
                for (op, a) in rest {
                    neq |= *op == CRelOp::Neq;
                    self.chain_arith(a, *span, &mut cvars);
                }
                // Nonlinear products: both factors definitely non-constant.
                self.scan_products(first, *span);
                for (_, a) in rest {
                    self.scan_products(a, *span);
                }
                FamInfo {
                    fam: Some(CstFamily::Conjunctive),
                    vars: Some(cvars),
                    neq,
                }
            }
        }
    }

    /// Check one pseudo-linear term: paths must be numeric, bound
    /// variables must hold numbers, unbound names accumulate as
    /// constraint variables.
    fn chain_arith(&mut self, a: &Arith, chain_span: Span, cvars: &mut BTreeSet<String>) {
        match a {
            Arith::Num(_) => {}
            Arith::Var(name) => {
                if self.bound.contains(name) {
                    let ty = self.types.get(name).cloned().unwrap_or(Ty::Unknown);
                    if ty.numeric() == Some(false) {
                        self.diags.push(
                            Diagnostic::error(
                                codes::NON_NUMERIC,
                                chain_span,
                                format!(
                                    "variable {name} is bound to {}, which cannot appear in \
                                     arithmetic",
                                    ty.describe()
                                ),
                            )
                            .with_help("bound variables in pseudo-linear atoms must hold numbers"),
                        );
                    }
                } else if !self.declared.contains(name) {
                    cvars.insert(name.clone());
                }
            }
            Arith::PathConst(p) => {
                let ty = self.path(p);
                if ty.numeric() == Some(false) {
                    self.diags.push(
                        Diagnostic::error(
                            codes::NON_NUMERIC,
                            p.span,
                            format!(
                                "path evaluates to {}, but pseudo-linear atoms need numeric \
                                 constants",
                                ty.describe()
                            ),
                        )
                        .with_help("only int- and real-valued paths can appear in arithmetic"),
                    );
                }
            }
            Arith::Add(x, y) | Arith::Sub(x, y) | Arith::Mul(x, y) => {
                self.chain_arith(x, chain_span, cvars);
                self.chain_arith(y, chain_span, cvars);
            }
            Arith::Neg(x) => self.chain_arith(x, chain_span, cvars),
        }
    }

    /// Flag products whose both factors definitely contain constraint
    /// variables — the evaluator rejects them for every binding.
    fn scan_products(&mut self, a: &Arith, chain_span: Span) {
        match a {
            Arith::Mul(x, y) => {
                self.scan_products(x, chain_span);
                self.scan_products(y, chain_span);
                if self.definitely_nonconstant(x) && self.definitely_nonconstant(y) {
                    let span = {
                        let s = x.span().join(y.span());
                        if s.is_dummy() {
                            chain_span
                        } else {
                            s
                        }
                    };
                    self.diags.push(
                        Diagnostic::error(
                            codes::NONLINEAR_PRODUCT,
                            span,
                            "product of two non-constant pseudo-linear terms".to_string(),
                        )
                        .with_help("LyriC constraints are linear: one factor must be constant"),
                    );
                }
            }
            Arith::Add(x, y) | Arith::Sub(x, y) => {
                self.scan_products(x, chain_span);
                self.scan_products(y, chain_span);
            }
            Arith::Neg(x) => self.scan_products(x, chain_span),
            Arith::Num(_) | Arith::Var(_) | Arith::PathConst(_) => {}
        }
    }

    fn definitely_nonconstant(&self, a: &Arith) -> bool {
        match a {
            Arith::Num(_) | Arith::PathConst(_) => false,
            Arith::Var(v) => !self.bound.contains(v) && !self.declared.contains(v),
            Arith::Add(x, y) | Arith::Sub(x, y) | Arith::Mul(x, y) => {
                self.definitely_nonconstant(x) || self.definitely_nonconstant(y)
            }
            Arith::Neg(x) => self.definitely_nonconstant(x),
        }
    }

    fn check_dup_vars(&mut self, vars: &[String], span: Span) {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for v in vars {
            if !seen.insert(v) {
                self.diags.push(
                    Diagnostic::error(
                        codes::DUPLICATE_CST_VARIABLE,
                        span,
                        format!("variable {v} appears twice in the CST variable list"),
                    )
                    .with_help("dimension schemas are sets: each variable names one dimension"),
                );
            }
        }
    }

    /// LYA014: a MAX/MIN objective over a projected formula may only
    /// mention the projected dimensions — anything else is free in the
    /// objective but absent from the optimization space, which the
    /// evaluator rejects for every binding.
    fn check_objective(
        &mut self,
        objective: &Arith,
        formula: &Formula,
        _info: &FamInfo,
        item_span: Span,
    ) {
        let Formula::Proj { vars, .. } = formula else {
            return;
        };
        let dims: BTreeSet<&str> = vars.iter().map(String::as_str).collect();
        let mut ovars: BTreeSet<String> = BTreeSet::new();
        collect_constraint_vars(objective, &self.bound, &self.declared, &mut ovars);
        for v in ovars {
            if !dims.contains(v.as_str()) {
                self.diags.push(
                    Diagnostic::error(
                        codes::OBJECTIVE_DIMENSION,
                        item_span,
                        format!(
                            "objective mentions {v}, which is not among the projected \
                             dimensions ({})",
                            vars.join(", ")
                        ),
                    )
                    .with_help("optimize over the formula's dimension schema"),
                );
            }
        }
    }

    // ------------------------------------------------ trivially-unsat lint

    /// Interval analysis over single-variable atoms within one
    /// conjunctive scope; OR branches are scanned independently.
    fn unsat_scan(&mut self, f: &Formula) {
        let mut atoms: Vec<(&Arith, CRelOp, &Arith, Span)> = Vec::new();
        let mut branches: Vec<&Formula> = Vec::new();
        collect_conjunctive_atoms(f, &mut atoms, &mut branches);

        let mut lo: BTreeMap<&str, Bound> = BTreeMap::new();
        let mut hi: BTreeMap<&str, Bound> = BTreeMap::new();
        for (a, op, b, span) in &atoms {
            // Ground atoms decide immediately.
            if let (Some(x), Some(y)) = (const_fold(a), const_fold(b)) {
                let holds = match op {
                    CRelOp::Eq => x == y,
                    CRelOp::Neq => x != y,
                    CRelOp::Le => x <= y,
                    CRelOp::Lt => x < y,
                    CRelOp::Ge => x >= y,
                    CRelOp::Gt => x > y,
                };
                if !holds {
                    self.diags.push(
                        Diagnostic::warning(
                            codes::TRIVIALLY_UNSAT,
                            *span,
                            "constant atom is false, so this conjunct denotes the empty set"
                                .to_string(),
                        )
                        .with_help("the query still runs, but this branch contributes nothing"),
                    );
                }
                continue;
            }
            // var ⋈ const and const ⋈ var tighten the variable's interval.
            let (v, c, op) = match (a, const_fold(b)) {
                (Arith::Var(v), Some(c)) => (v.as_str(), c, *op),
                _ => match (const_fold(a), b) {
                    (Some(c), Arith::Var(v)) => (v.as_str(), c, flip(*op)),
                    _ => continue,
                },
            };
            if self.bound.contains(v) || self.declared.contains(v) {
                continue; // not a constraint variable
            }
            match op {
                CRelOp::Le => tighten_hi(&mut hi, v, c, false, *span),
                CRelOp::Lt => tighten_hi(&mut hi, v, c, true, *span),
                CRelOp::Ge => tighten_lo(&mut lo, v, c, false, *span),
                CRelOp::Gt => tighten_lo(&mut lo, v, c, true, *span),
                CRelOp::Eq => {
                    tighten_lo(&mut lo, v, c.clone(), false, *span);
                    tighten_hi(&mut hi, v, c, false, *span);
                }
                CRelOp::Neq => {}
            }
        }
        for (v, (l, ls, lspan)) in &lo {
            if let Some((h, hs, hspan)) = hi.get(v) {
                let empty = l > h || (l == h && (*ls || *hs));
                if empty {
                    self.diags.push(
                        Diagnostic::warning(
                            codes::TRIVIALLY_UNSAT,
                            lspan.join(*hspan),
                            format!("conjunct bounds {v} to an empty interval"),
                        )
                        .with_help(
                            "the lower bound exceeds the upper bound: this conjunct denotes \
                             the empty set",
                        ),
                    );
                }
            }
        }

        for b in branches {
            self.unsat_scan(b);
        }
    }

    // ------------------------------------------------ interval-box lint

    /// Convert a pseudo-linear term to a [`LinExpr`] over the scope's
    /// constraint variables. `None` when the term mentions a database
    /// reference (a path, or a FROM-bound / selector-declared variable)
    /// or a product of two non-constant factors — dropping such atoms
    /// only widens the inferred box, which keeps the lint sound.
    fn arith_to_linexpr(&self, a: &Arith) -> Option<LinExpr> {
        match a {
            Arith::Num(n) => Some(LinExpr::constant(n.clone())),
            Arith::PathConst(_) => None,
            Arith::Var(v) => {
                if self.bound.contains(v) || self.declared.contains(v) {
                    None
                } else {
                    Some(LinExpr::var(lyric_constraint::Var::new(v.clone())))
                }
            }
            Arith::Add(x, y) => Some(&self.arith_to_linexpr(x)? + &self.arith_to_linexpr(y)?),
            Arith::Sub(x, y) => Some(&self.arith_to_linexpr(x)? - &self.arith_to_linexpr(y)?),
            Arith::Mul(x, y) => match (const_fold(x), const_fold(y)) {
                (Some(c), _) => Some(self.arith_to_linexpr(y)?.scale(&c)),
                (_, Some(c)) => Some(self.arith_to_linexpr(x)?.scale(&c)),
                _ => None,
            },
            Arith::Neg(x) => Some(-&self.arith_to_linexpr(x)?),
        }
    }

    /// The convertible, deduplicated, non-ground atoms of `f`'s
    /// conjunctive skeleton (ground atoms are `unsat_scan`'s LYA040
    /// territory), each with its source span.
    fn conjunctive_box_atoms(&self, f: &Formula) -> Vec<(Atom, Span)> {
        let mut raw: Vec<(&Arith, CRelOp, &Arith, Span)> = Vec::new();
        let mut branches: Vec<&Formula> = Vec::new();
        collect_conjunctive_atoms(f, &mut raw, &mut branches);
        let mut atoms: Vec<(Atom, Span)> = Vec::new();
        for (a, op, b, span) in raw {
            let (Some(lhs), Some(rhs)) = (self.arith_to_linexpr(a), self.arith_to_linexpr(b))
            else {
                continue;
            };
            let atom = Atom::new(lhs, crel(op), rhs);
            if atom.trivial().is_some() || atoms.iter().any(|(seen, _)| seen == &atom) {
                continue;
            }
            atoms.push((atom, span));
        }
        atoms
    }

    /// Multi-variable interval-box lint over the conjunctive skeleton
    /// (the always-on analyzer face of the `lyric_absint` domain, run
    /// after [`unsat_scan`](Self::unsat_scan)). Converts every
    /// pseudo-linear atom to a normalized constraint atom and runs the
    /// box transfer functions to a truncated fixpoint:
    ///
    /// * an empty box fires `code` — [`codes::STATIC_UNSAT`] at a formula
    ///   root, [`codes::DEAD_DISJUNCT`] inside an OR branch — unless the
    ///   single-variable scan already flagged the same scope;
    /// * otherwise each comparison whose negation empties the box of the
    ///   remaining atoms is redundant ([`codes::STATIC_ENTAILED`]).
    ///
    /// OR branches are scanned independently, like `unsat_scan`. The
    /// domain is sound, so (unlike the LP deep check) this never needs a
    /// budget and runs on every analysis.
    fn box_scan(&mut self, f: &Formula, code: &'static str) {
        let atoms = self.conjunctive_box_atoms(f);
        // A single non-trivial atom always has a nonempty box, and its
        // "entailment" would be vacuous; skip the degenerate scope.
        if atoms.len() >= 2 {
            let only: Vec<Atom> = atoms.iter().map(|(a, _)| a.clone()).collect();
            if IntervalBox::of_atoms(&only).is_empty() {
                let scope = f.span();
                let already_flagged = self.diags.iter().any(|d| {
                    d.code == codes::TRIVIALLY_UNSAT
                        && (scope.is_dummy()
                            || d.span.is_dummy()
                            || (d.span.start >= scope.start && d.span.end <= scope.end))
                });
                if !already_flagged {
                    let (msg, help) = if code == codes::DEAD_DISJUNCT {
                        (
                            "interval analysis proves this OR branch empty: the disjunct \
                             is dead",
                            "the branch contributes nothing; delete it or fix its bounds",
                        )
                    } else {
                        (
                            "interval analysis proves this conjunction unsatisfiable",
                            "propagating the atoms' bounds yields an empty interval: the \
                             formula denotes the empty set",
                        )
                    };
                    self.diags
                        .push(Diagnostic::warning(code, scope, msg.to_string()).with_help(help));
                }
            } else {
                for (i, (a, span)) in atoms.iter().enumerate() {
                    let mut rest: Vec<Atom> = atoms
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, (x, _))| x.clone())
                        .collect();
                    rest.push(a.negate());
                    if IntervalBox::of_atoms(&rest).is_empty() {
                        self.diags.push(
                            Diagnostic::warning(
                                codes::STATIC_ENTAILED,
                                *span,
                                "comparison is entailed by the rest of its conjunction".to_string(),
                            )
                            .with_help(
                                "interval analysis proves it redundant; removing it does \
                                 not change the result",
                            ),
                        );
                    }
                }
            }
        }
        let mut raw: Vec<(&Arith, CRelOp, &Arith, Span)> = Vec::new();
        let mut branches: Vec<&Formula> = Vec::new();
        collect_conjunctive_atoms(f, &mut raw, &mut branches);
        for b in branches {
            self.box_scan(b, codes::DEAD_DISJUNCT);
        }
    }

    // ------------------------------------------------------ deep check

    /// Is `f` free of database references (paths and bindable names), so
    /// that [`crate::storage::formula_to_cst`] interprets it exactly as
    /// the evaluator would?
    fn database_free(&self, f: &Formula) -> bool {
        match f {
            Formula::And(a, b) | Formula::Or(a, b) => {
                self.database_free(a) && self.database_free(b)
            }
            Formula::Not(a) => self.database_free(a),
            Formula::Proj { body, .. } => self.database_free(body),
            Formula::Pred { .. } => false,
            Formula::Chain { first, rest, .. } => {
                self.arith_database_free(first)
                    && rest.iter().all(|(_, a)| self.arith_database_free(a))
            }
        }
    }

    fn arith_database_free(&self, a: &Arith) -> bool {
        match a {
            Arith::Num(_) => true,
            Arith::PathConst(_) => false,
            Arith::Var(v) => !self.bound.contains(v) && !self.declared.contains(v),
            Arith::Add(x, y) | Arith::Sub(x, y) | Arith::Mul(x, y) => {
                self.arith_database_free(x) && self.arith_database_free(y)
            }
            Arith::Neg(x) => self.arith_database_free(x),
        }
    }

    /// LYA041 (opt-in): instantiate each queued database-free formula
    /// through the constraint engine under a small budget and warn when
    /// the LP decision procedure proves it unsatisfiable. Skipped when
    /// any error was found or an engine context is already active.
    fn deep_check(&mut self) {
        if !self.opts.deep_unsat
            || self.deep.is_empty()
            || self.diags.iter().any(|d| d.severity == Severity::Error)
            || lyric_engine::is_active()
        {
            return;
        }
        let candidates = std::mem::take(&mut self.deep);
        for f in candidates {
            // The interval box demotes the LP instantiation to a fallback:
            // when the box already proved the conjunctive skeleton empty,
            // LYA050 has fired and the (budgeted, much more expensive)
            // simplex run adds nothing.
            let skeleton: Vec<Atom> = self
                .conjunctive_box_atoms(&f)
                .into_iter()
                .map(|(a, _)| a)
                .collect();
            if skeleton.len() >= 2 && IntervalBox::of_atoms(&skeleton).is_empty() {
                continue;
            }
            let budget = lyric_engine::EngineBudget::unlimited()
                .with_max_pivots(10_000)
                .with_max_fm_atoms(5_000)
                .with_max_disjuncts(1_000)
                .with_deadline(std::time::Duration::from_millis(250));
            let verdict = lyric_engine::run_with(budget, false, || {
                crate::storage::formula_to_cst(&f)
                    .ok()
                    .map(|c| c.satisfiable())
            });
            if let Ok((Some(false), _)) = verdict {
                self.diags.push(
                    Diagnostic::warning(
                        codes::LP_UNSAT,
                        f.span(),
                        "the LP decision procedure proves this formula unsatisfiable".to_string(),
                    )
                    .with_help("the constructed constraint object denotes the empty set"),
                );
            }
        }
    }
}

// ------------------------------------------------------------- helpers

fn join_fams(a: Option<CstFamily>, b: Option<CstFamily>, op: FamilyOp) -> Option<CstFamily> {
    match (a, b) {
        (Some(x), Some(y)) => CstFamily::apply(x, op, Some(y)),
        _ => None,
    }
}

fn union_vars(
    a: Option<BTreeSet<String>>,
    b: Option<BTreeSet<String>>,
) -> Option<BTreeSet<String>> {
    match (a, b) {
        (Some(mut x), Some(y)) => {
            x.extend(y);
            Some(x)
        }
        _ => None,
    }
}

/// The constraint-layer operator of an AST comparison operator.
fn crel(op: CRelOp) -> RelOp {
    match op {
        CRelOp::Eq => RelOp::Eq,
        CRelOp::Neq => RelOp::Neq,
        CRelOp::Le => RelOp::Le,
        CRelOp::Lt => RelOp::Lt,
        CRelOp::Ge => RelOp::Ge,
        CRelOp::Gt => RelOp::Gt,
    }
}

fn flip(op: CRelOp) -> CRelOp {
    match op {
        CRelOp::Le => CRelOp::Ge,
        CRelOp::Lt => CRelOp::Gt,
        CRelOp::Ge => CRelOp::Le,
        CRelOp::Gt => CRelOp::Lt,
        CRelOp::Eq => CRelOp::Eq,
        CRelOp::Neq => CRelOp::Neq,
    }
}

fn tighten_lo<'a>(
    lo: &mut BTreeMap<&'a str, Bound>,
    v: &'a str,
    c: Rational,
    strict: bool,
    span: Span,
) {
    match lo.get(v) {
        Some((cur, cur_strict, _)) if *cur > c || (*cur == c && (*cur_strict || !strict)) => {}
        _ => {
            lo.insert(v, (c, strict, span));
        }
    }
}

fn tighten_hi<'a>(
    hi: &mut BTreeMap<&'a str, Bound>,
    v: &'a str,
    c: Rational,
    strict: bool,
    span: Span,
) {
    match hi.get(v) {
        Some((cur, cur_strict, _)) if *cur < c || (*cur == c && (*cur_strict || !strict)) => {}
        _ => {
            hi.insert(v, (c, strict, span));
        }
    }
}

/// Fold an arithmetic term into a rational, when it is ground.
fn const_fold(a: &Arith) -> Option<Rational> {
    match a {
        Arith::Num(n) => Some(n.clone()),
        Arith::Var(_) | Arith::PathConst(_) => None,
        Arith::Add(x, y) => Some(&const_fold(x)? + &const_fold(y)?),
        Arith::Sub(x, y) => Some(&const_fold(x)? - &const_fold(y)?),
        Arith::Mul(x, y) => Some(&const_fold(x)? * &const_fold(y)?),
        Arith::Neg(x) => Some(-&const_fold(x)?),
    }
}

/// Atoms of the conjunctive skeleton: AND and projection recurse, OR
/// branches are collected for independent scanning, NOT and CST
/// references are opaque.
fn collect_conjunctive_atoms<'a>(
    f: &'a Formula,
    atoms: &mut Vec<(&'a Arith, CRelOp, &'a Arith, Span)>,
    branches: &mut Vec<&'a Formula>,
) {
    match f {
        Formula::And(a, b) => {
            collect_conjunctive_atoms(a, atoms, branches);
            collect_conjunctive_atoms(b, atoms, branches);
        }
        Formula::Proj { body, .. } => collect_conjunctive_atoms(body, atoms, branches),
        Formula::Or(a, b) => {
            branches.push(a);
            branches.push(b);
        }
        Formula::Not(_) | Formula::Pred { .. } => {}
        Formula::Chain { first, rest, span } => {
            let mut prev = first;
            for (op, next) in rest {
                atoms.push((prev, *op, next, *span));
                prev = next;
            }
        }
    }
}

fn collect_constraint_vars(
    a: &Arith,
    bound: &BTreeSet<String>,
    declared: &BTreeSet<String>,
    out: &mut BTreeSet<String>,
) {
    match a {
        Arith::Var(v) => {
            if !bound.contains(v) && !declared.contains(v) {
                out.insert(v.clone());
            }
        }
        Arith::Num(_) | Arith::PathConst(_) => {}
        Arith::Add(x, y) | Arith::Sub(x, y) | Arith::Mul(x, y) => {
            collect_constraint_vars(x, bound, declared, out);
            collect_constraint_vars(y, bound, declared, out);
        }
        Arith::Neg(x) => collect_constraint_vars(x, bound, declared, out),
    }
}

// Mirror of `Ctx::new`'s selector-variable scan: FROM variables, the view
// variable and bracket selectors are declared before evaluation begins.
fn scan_query(q: &SelectQuery, out: &mut BTreeSet<String>) {
    fn scan_path(p: &PathExpr, out: &mut BTreeSet<String>) {
        for s in &p.steps {
            if let Some(Selector::Var(v)) = &s.selector {
                out.insert(v.clone());
            }
        }
    }
    fn scan_arith(a: &Arith, out: &mut BTreeSet<String>) {
        match a {
            Arith::PathConst(p) => scan_path(p, out),
            Arith::Add(x, y) | Arith::Sub(x, y) | Arith::Mul(x, y) => {
                scan_arith(x, out);
                scan_arith(y, out);
            }
            Arith::Neg(x) => scan_arith(x, out),
            Arith::Num(_) | Arith::Var(_) => {}
        }
    }
    fn scan_formula(f: &Formula, out: &mut BTreeSet<String>) {
        match f {
            Formula::And(a, b) | Formula::Or(a, b) => {
                scan_formula(a, out);
                scan_formula(b, out);
            }
            Formula::Not(a) | Formula::Proj { body: a, .. } => scan_formula(a, out),
            Formula::Pred { path, .. } => scan_path(path, out),
            Formula::Chain { first, rest, .. } => {
                scan_arith(first, out);
                for (_, a) in rest {
                    scan_arith(a, out);
                }
            }
        }
    }
    fn scan_cond(c: &Cond, out: &mut BTreeSet<String>) {
        match c {
            Cond::And(a, b) | Cond::Or(a, b) => {
                scan_cond(a, out);
                scan_cond(b, out);
            }
            Cond::Not(a) => scan_cond(a, out),
            Cond::PathPred(p) => scan_path(p, out),
            Cond::Compare { lhs, rhs, .. } => {
                for op in [lhs, rhs] {
                    if let CmpOperand::Path(p) = op {
                        scan_path(p, out);
                    }
                }
            }
            Cond::Sat(f) => scan_formula(f, out),
            Cond::Entails(a, b) => {
                scan_formula(a, out);
                scan_formula(b, out);
            }
        }
    }
    if let Some(w) = &q.where_clause {
        scan_cond(w, out);
    }
    for item in &q.items {
        match &item.value {
            SelectValue::Path(p) => scan_path(p, out),
            SelectValue::Formula(f) => scan_formula(f, out),
            SelectValue::Optimize {
                objective, formula, ..
            } => {
                scan_arith(objective, out);
                scan_formula(formula, out);
            }
        }
    }
}

/// Every identifier the query mentions outside FROM binding positions —
/// the conservative "used" set for the unused-binding lint.
fn used_names(q: &SelectQuery, view_var: Option<&str>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    if let Some(v) = view_var {
        out.insert(v.to_string());
    }
    fn scan_path(p: &PathExpr, out: &mut BTreeSet<String>) {
        if let Selector::Var(v) = &p.root {
            out.insert(v.clone());
        }
        for s in &p.steps {
            out.insert(s.attr.clone());
            if let Some(Selector::Var(v)) = &s.selector {
                out.insert(v.clone());
            }
        }
    }
    fn scan_arith(a: &Arith, out: &mut BTreeSet<String>) {
        match a {
            Arith::Var(v) => {
                out.insert(v.clone());
            }
            Arith::PathConst(p) => scan_path(p, out),
            Arith::Add(x, y) | Arith::Sub(x, y) | Arith::Mul(x, y) => {
                scan_arith(x, out);
                scan_arith(y, out);
            }
            Arith::Neg(x) => scan_arith(x, out),
            Arith::Num(_) => {}
        }
    }
    fn scan_formula(f: &Formula, out: &mut BTreeSet<String>) {
        match f {
            Formula::And(a, b) | Formula::Or(a, b) => {
                scan_formula(a, out);
                scan_formula(b, out);
            }
            Formula::Not(a) => scan_formula(a, out),
            Formula::Proj { vars, body, .. } => {
                out.extend(vars.iter().cloned());
                scan_formula(body, out);
            }
            Formula::Pred { path, vars } => {
                scan_path(path, out);
                if let Some(vs) = vars {
                    out.extend(vs.iter().cloned());
                }
            }
            Formula::Chain { first, rest, .. } => {
                scan_arith(first, out);
                for (_, a) in rest {
                    scan_arith(a, out);
                }
            }
        }
    }
    fn scan_cond(c: &Cond, out: &mut BTreeSet<String>) {
        match c {
            Cond::And(a, b) | Cond::Or(a, b) => {
                scan_cond(a, out);
                scan_cond(b, out);
            }
            Cond::Not(a) => scan_cond(a, out),
            Cond::PathPred(p) => scan_path(p, out),
            Cond::Compare { lhs, rhs, .. } => {
                for op in [lhs, rhs] {
                    if let CmpOperand::Path(p) = op {
                        scan_path(p, out);
                    }
                }
            }
            Cond::Sat(f) => scan_formula(f, out),
            Cond::Entails(a, b) => {
                scan_formula(a, out);
                scan_formula(b, out);
            }
        }
    }
    if let Some(w) = &q.where_clause {
        scan_cond(w, &mut out);
    }
    for item in &q.items {
        match &item.value {
            SelectValue::Path(p) => scan_path(p, &mut out),
            SelectValue::Formula(f) => scan_formula(f, &mut out),
            SelectValue::Optimize {
                objective, formula, ..
            } => {
                scan_arith(objective, &mut out);
                scan_formula(formula, &mut out);
            }
        }
    }
    if let Some(vars) = &q.oid_function {
        out.extend(vars.iter().cloned());
    }
    out
}
