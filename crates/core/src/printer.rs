//! Pretty-printing of LyriC ASTs back to concrete syntax.
//!
//! The printer produces text the parser accepts, and round-trips: for any
//! parseable query `q`, `parse(print(parse(q))) == parse(q)` (verified by
//! property tests). It is also what `Display` on the AST types uses, so
//! query plans and error contexts render as real LyriC.

use crate::ast::*;
use std::fmt;

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Select(s) => write!(f, "{s}"),
            Query::CreateView(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for ViewQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CREATE VIEW {} AS SUBCLASS OF {} {}",
            self.name, self.parent, self.select
        )
    }
}

impl fmt::Display for SelectQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.signature.is_empty() {
            write!(f, " SIGNATURE ")?;
            for (i, sig) in self.signature.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(
                    f,
                    "{} {} {}",
                    sig.attr,
                    if sig.is_set { "=>>" } else { "=>" },
                    sig.class
                )?;
            }
        }
        write!(f, " FROM ")?;
        for (i, fi) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", fi.class, fi.var)?;
        }
        if let Some(vars) = &self.oid_function {
            write!(f, " OID FUNCTION OF {}", vars.join(", "))?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = &self.label {
            write!(f, "{l} = ")?;
        }
        write!(f, "{}", self.value)
    }
}

impl fmt::Display for SelectValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectValue::Path(p) => write!(f, "{p}"),
            SelectValue::Formula(formula) => write!(f, "{formula}"),
            SelectValue::Optimize {
                kind,
                objective,
                formula,
            } => {
                let name = match kind {
                    OptKind::Max => "MAX",
                    OptKind::Min => "MIN",
                    OptKind::MaxPoint => "MAX_POINT",
                    OptKind::MinPoint => "MIN_POINT",
                };
                write!(f, "{name}({objective} SUBJECT TO {formula})")
            }
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)?;
        for step in &self.steps {
            write!(f, ".{}", step.attr)?;
            if let Some(sel) = &step.selector {
                write!(f, "[{sel}]")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Selector::Var(v) => write!(f, "{v}"),
            Selector::Lit(l) => write!(f, "{l}"),
        }
    }
}

impl fmt::Display for OidLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OidLit::Named(n) => write!(f, "{n}"),
            OidLit::Int(i) => write!(f, "{i}"),
            OidLit::Str(s) => write!(f, "'{s}'"),
            OidLit::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::And(a, b) => {
                write_cond_operand(f, a, matches!(a.as_ref(), Cond::Or(..)))?;
                write!(f, " AND ")?;
                write_cond_operand(f, b, matches!(b.as_ref(), Cond::Or(..) | Cond::And(..)))
            }
            Cond::Or(a, b) => {
                write!(f, "{a} OR ")?;
                write_cond_operand(f, b, matches!(b.as_ref(), Cond::Or(..)))
            }
            Cond::Not(a) => {
                write!(f, "NOT ")?;
                write_cond_operand(f, a, matches!(a.as_ref(), Cond::Or(..) | Cond::And(..)))
            }
            Cond::PathPred(p) => write!(f, "{p}"),
            Cond::Compare { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Cond::Sat(formula) => write!(f, "({formula})"),
            Cond::Entails(a, b) => write!(f, "({a} |= {b})"),
        }
    }
}

fn write_cond_operand(f: &mut fmt::Formatter<'_>, c: &Cond, parens: bool) -> fmt::Result {
    if parens {
        // A parenthesized Boolean group re-parses as a condition only when
        // it is not formula-shaped; conditions containing comparisons or
        // path predicates are safe.
        write!(f, "({c})")
    } else {
        write!(f, "{c}")
    }
}

impl fmt::Display for CmpOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOperand::Path(p) => write!(f, "{p}"),
            CmpOperand::Num(n) => write!(f, "{n}"),
            CmpOperand::Str(s) => write!(f, "'{s}'"),
            CmpOperand::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOp::Eq => write!(f, "="),
            CmpOp::Neq => write!(f, "!="),
            CmpOp::Lt => write!(f, "<"),
            CmpOp::Le => write!(f, "<="),
            CmpOp::Gt => write!(f, ">"),
            CmpOp::Ge => write!(f, ">="),
            CmpOp::Contains => write!(f, "CONTAINS"),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::And(a, b) => {
                write_formula_operand(f, a, matches!(a.as_ref(), Formula::Or(..)))?;
                write!(f, " AND ")?;
                write_formula_operand(
                    f,
                    b,
                    matches!(b.as_ref(), Formula::Or(..) | Formula::And(..)),
                )
            }
            Formula::Or(a, b) => {
                write!(f, "{a} OR ")?;
                write_formula_operand(f, b, matches!(b.as_ref(), Formula::Or(..)))
            }
            Formula::Not(a) => {
                write!(f, "NOT ")?;
                write_formula_operand(
                    f,
                    a,
                    matches!(a.as_ref(), Formula::Or(..) | Formula::And(..)),
                )
            }
            Formula::Proj { vars, body, .. } => {
                write!(f, "(({}) | {body})", vars.join(","))
            }
            Formula::Pred { path, vars } => {
                write!(f, "{path}")?;
                if let Some(vs) = vars {
                    write!(f, "({})", vs.join(","))?;
                }
                Ok(())
            }
            Formula::Chain { first, rest, .. } => {
                write!(f, "{first}")?;
                for (op, a) in rest {
                    let op_str = match op {
                        CRelOp::Eq => "=",
                        CRelOp::Neq => "!=",
                        CRelOp::Le => "<=",
                        CRelOp::Lt => "<",
                        CRelOp::Ge => ">=",
                        CRelOp::Gt => ">",
                    };
                    write!(f, " {op_str} {a}")?;
                }
                Ok(())
            }
        }
    }
}

fn write_formula_operand(f: &mut fmt::Formatter<'_>, x: &Formula, parens: bool) -> fmt::Result {
    if parens {
        write!(f, "({x})")
    } else {
        write!(f, "{x}")
    }
}

impl fmt::Display for Arith {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arith::Num(n) => write!(f, "{n}"),
            Arith::Var(v) => write!(f, "{v}"),
            Arith::PathConst(p) => write!(f, "{p}"),
            Arith::Add(a, b) => write!(f, "{a} + {}", arith_operand(b, Ctx::AddRhs)),
            Arith::Sub(a, b) => write!(f, "{a} - {}", arith_operand(b, Ctx::AddRhs)),
            Arith::Mul(a, b) => write!(
                f,
                "{} * {}",
                arith_operand(a, Ctx::MulLhs),
                arith_operand(b, Ctx::MulRhs)
            ),
            Arith::Neg(a) => write!(f, "-{}", arith_operand(a, Ctx::Neg)),
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Ctx {
    /// Right operand of `+`/`-` (the parser is left-associative, so a
    /// nested additive or a leading-minus term must be grouped).
    AddRhs,
    /// Left operand of `*` (left-associative nesting is fine; additive
    /// operands bind looser).
    MulLhs,
    /// Right operand of `*` (nested `*` must be grouped to survive
    /// left-associative re-parsing; `-x` re-parses as `Neg` here, fine).
    MulRhs,
    /// Operand of unary minus: `- a * b` re-parses as `(-a) * b`, so any
    /// binary operand must be grouped.
    Neg,
}

/// Parenthesize sub-expressions whose shape would re-parse differently in
/// the given context.
fn arith_operand(a: &Arith, ctx: Ctx) -> String {
    let needs = match a {
        Arith::Add(..) | Arith::Sub(..) => true,
        Arith::Mul(..) => matches!(ctx, Ctx::MulRhs | Ctx::Neg),
        // `--x` would lex as a line comment; `-x * y` re-parses as
        // `(-x) * y`.
        Arith::Neg(..) => matches!(ctx, Ctx::MulLhs | Ctx::Neg),
        _ => false,
    };
    if needs {
        format!("({a})")
    } else {
        format!("{a}")
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_formula, parse_query};

    /// Round-trip: parse → print → parse yields the same AST.
    fn roundtrip_query(src: &str) {
        let q1 = parse_query(src).expect("first parse");
        let printed = q1.to_string();
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("printed form failed to parse: {printed}\nerror: {e}"));
        assert_eq!(q1, q2, "round-trip drift via: {printed}");
    }

    fn roundtrip_formula(src: &str) {
        let f1 = parse_formula(src).expect("first parse");
        let printed = f1.to_string();
        let f2 = parse_formula(&printed)
            .unwrap_or_else(|e| panic!("printed form failed to parse: {printed}\nerror: {e}"));
        assert_eq!(f1, f2, "round-trip drift via: {printed}");
    }

    #[test]
    fn paper_queries_roundtrip() {
        roundtrip_query("SELECT Y FROM Desk X WHERE X.drawer[Y].color['red']");
        roundtrip_query(
            "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
             FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
        );
        roundtrip_query(
            "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
             FROM Desk DSK
             WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
        );
        roundtrip_query(
            "CREATE VIEW Overlap AS SUBCLASS OF Thing
             SELECT first = X, second = Y
             SIGNATURE first => Office_Object, second =>> Office_Object
             FROM Office_Object X, Office_Object Y
             OID FUNCTION OF X, Y
             WHERE X.extent[U] AND Y.extent[V]",
        );
        roundtrip_query(
            "SELECT MAX(2*x + y SUBJECT TO ((x,y) | C(x,y) AND x >= 0)) FROM Catalog C2",
        );
    }

    #[test]
    fn boolean_structure_roundtrips() {
        roundtrip_query(
            "SELECT X FROM Desk X WHERE (X.color = 'red' OR X.color = 'blue') AND X.drawer[D]",
        );
        roundtrip_query("SELECT X FROM Desk X WHERE NOT X.color = 'red'");
        roundtrip_query("SELECT X FROM Desk X WHERE NOT (X.color = 'red' AND X.color = 'blue')");
    }

    #[test]
    fn formulas_roundtrip() {
        roundtrip_formula("-4 <= w AND w <= 4");
        roundtrip_formula("0 <= x <= 10");
        roundtrip_formula("((u,v) | E AND D AND x = 6)");
        roundtrip_formula("E(w,z) OR D(w,z) AND q = 1");
        roundtrip_formula("(E(w,z) OR D(w,z)) AND q = 1");
        roundtrip_formula("NOT (x <= 1 OR y >= 2)");
        roundtrip_formula("(x + 1) * 2 <= y - 3");
        roundtrip_formula("x - -1 = 0");
        roundtrip_formula("((u) | ((v) | u = v AND v >= 0))");
    }

    #[test]
    fn printer_output_is_readable() {
        let q =
            parse_query("SELECT CO, ((u,v) | E AND D) FROM Office_Object CO WHERE CO.extent[E]")
                .unwrap();
        assert_eq!(
            q.to_string(),
            "SELECT CO, ((u,v) | E AND D) FROM Office_Object CO WHERE CO.extent[E]"
        );
    }
}
