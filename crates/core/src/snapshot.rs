//! Binary snapshot persistence for constraint-object databases.
//!
//! A snapshot is a [`lyric_store::snapshot`] container with two sections:
//!
//! * `META` — a small `key=value` text block; today one line,
//!   `objects=<count>`, cross-checked against the reloaded database so a
//!   payload that decodes but drops objects is still rejected;
//! * `DBTX` — the full textual dump of [`crate::storage::save`].
//!
//! The textual dump iterates `BTreeMap`-ordered schema and extents, so
//! save → load → save is byte-identical. Every structural failure —
//! truncation, bad magic, version skew, checksum mismatch, section
//! layout, undecodable payload, object-count drift — surfaces as
//! [`LyricError::SnapshotCorrupt`] and never as a partial [`Database`].

use crate::error::LyricError;
use crate::storage;
use lyric_oodb::Database;
use lyric_store::snapshot::{read_container, write_container};
use std::path::Path;

/// Serialize a database to snapshot container bytes.
pub fn to_bytes(db: &Database) -> Result<Vec<u8>, LyricError> {
    let text = storage::save(db)?;
    let meta = format!("objects={}\n", db.objects().count());
    Ok(write_container(&[
        (*b"META", meta.into_bytes()),
        (*b"DBTX", text.into_bytes()),
    ]))
}

/// Decode and fully verify snapshot container bytes into a database.
pub fn from_bytes(bytes: &[u8]) -> Result<Database, LyricError> {
    let sections = read_container(bytes)?;
    let [(meta_tag, meta), (db_tag, dbtx)] = sections.as_slice() else {
        return Err(LyricError::SnapshotCorrupt(format!(
            "expected 2 sections (META, DBTX), found {}",
            sections.len()
        )));
    };
    if meta_tag != b"META" || db_tag != b"DBTX" {
        return Err(LyricError::SnapshotCorrupt(
            "expected section order META, DBTX".into(),
        ));
    }
    let meta = std::str::from_utf8(meta)
        .map_err(|_| LyricError::SnapshotCorrupt("META section is not UTF-8".into()))?;
    let declared: usize = meta
        .lines()
        .find_map(|l| l.strip_prefix("objects="))
        .and_then(|n| n.trim().parse().ok())
        .ok_or_else(|| LyricError::SnapshotCorrupt("META section lacks objects=<n>".into()))?;
    let text = std::str::from_utf8(dbtx)
        .map_err(|_| LyricError::SnapshotCorrupt("DBTX section is not UTF-8".into()))?;
    let db = storage::load(text)
        .map_err(|e| LyricError::SnapshotCorrupt(format!("DBTX section: {e}")))?;
    let loaded = db.objects().count();
    if loaded != declared {
        return Err(LyricError::SnapshotCorrupt(format!(
            "META declares {declared} objects, DBTX holds {loaded}"
        )));
    }
    Ok(db)
}

/// `Database::{save_snapshot, load_snapshot}` — file-level snapshot
/// persistence as method syntax on [`Database`].
pub trait SnapshotExt: Sized {
    /// Write a snapshot of `self` to `path` (atomicity is the caller's
    /// concern; the write is a single `std::fs::write`).
    fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), LyricError>;

    /// Read and fully verify a snapshot file.
    fn load_snapshot(path: impl AsRef<Path>) -> Result<Self, LyricError>;
}

impl SnapshotExt for Database {
    fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), LyricError> {
        let bytes = to_bytes(self)?;
        std::fs::write(path.as_ref(), bytes)
            .map_err(|e| LyricError::SnapshotCorrupt(format!("io: {e}")))
    }

    fn load_snapshot(path: impl AsRef<Path>) -> Result<Database, LyricError> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| LyricError::SnapshotCorrupt(format!("io: {e}")))?;
        from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    #[test]
    fn snapshot_round_trip_is_byte_identical() {
        let db = paper_example::database();
        let bytes = to_bytes(&db).expect("serializes");
        let reloaded = from_bytes(&bytes).expect("verifies");
        assert_eq!(to_bytes(&reloaded).expect("re-serializes"), bytes);
    }

    #[test]
    fn file_round_trip_answers_queries() {
        let db = paper_example::database();
        let path = std::env::temp_dir().join(format!("lyric_snapshot_{}.snap", std::process::id()));
        db.save_snapshot(&path).expect("writes");
        let mut reloaded = Database::load_snapshot(&path).expect("reads");
        std::fs::remove_file(&path).ok();
        let q = "SELECT CO FROM Office_Object CO WHERE CO.color['red']";
        let mut db = db;
        let before = crate::execute(&mut db, q).expect("original");
        let after = crate::execute(&mut reloaded, q).expect("reloaded");
        assert_eq!(before, after);
    }

    #[test]
    fn meta_object_count_drift_is_corrupt() {
        let db = paper_example::database();
        let text = crate::storage::save(&db).unwrap();
        let bytes = lyric_store::snapshot::write_container(&[
            (*b"META", b"objects=1\n".to_vec()),
            (*b"DBTX", text.into_bytes()),
        ]);
        let err = from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, LyricError::SnapshotCorrupt(_)), "{err}");
    }

    #[test]
    fn wrong_section_layouts_are_corrupt() {
        let one = lyric_store::snapshot::write_container(&[(*b"META", b"objects=0\n".to_vec())]);
        assert!(matches!(
            from_bytes(&one).unwrap_err(),
            LyricError::SnapshotCorrupt(_)
        ));
        let swapped = lyric_store::snapshot::write_container(&[
            (*b"DBTX", b"LYRIC-DB 1\n".to_vec()),
            (*b"META", b"objects=0\n".to_vec()),
        ]);
        assert!(matches!(
            from_bytes(&swapped).unwrap_err(),
            LyricError::SnapshotCorrupt(_)
        ));
    }
}
