//! Byte spans into LyriC source text.
//!
//! Spans exist purely for diagnostics: they are carried alongside tokens by
//! the lexer, threaded into the AST by the parser, and rendered by
//! `lyric-analyze`'s caret printer. To keep them out of the language
//! *semantics*, [`Span`] compares equal to every other span and hashes to
//! nothing — AST equality (tests, proptest round-trips, memo keys) is
//! unaffected by where a node happened to sit in the source.

use std::hash::{Hash, Hasher};

/// A half-open byte range `start..end` into the original query string.
///
/// A `Span` of `0..0` is the *dummy* span, used for synthesized AST nodes
/// (e.g. ones built programmatically rather than parsed).
#[derive(Debug, Clone, Copy, Default)]
pub struct Span {
    /// Byte offset of the first byte covered.
    pub start: usize,
    /// Byte offset one past the last byte covered.
    pub end: usize,
}

impl Span {
    /// The dummy span, attached to AST nodes that were never parsed.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// True for the dummy (empty, position-zero) span.
    pub fn is_dummy(&self) -> bool {
        self.start == 0 && self.end == 0
    }

    /// The range as a `(start, end)` tuple for trace attribution; `None`
    /// for the dummy span (synthesized nodes have no source position).
    pub fn byte_range(self) -> Option<(usize, usize)> {
        (!self.is_dummy()).then_some((self.start, self.end))
    }

    /// Smallest span covering both `self` and `other`; dummy spans are
    /// treated as absent rather than as position zero.
    pub fn join(self, other: Span) -> Span {
        if self.is_dummy() {
            other
        } else if other.is_dummy() {
            self
        } else {
            Span::new(self.start.min(other.start), self.end.max(other.end))
        }
    }
}

/// Spans never affect equality: an AST node built in code (dummy span)
/// equals the same node parsed from text (real span).
impl PartialEq for Span {
    fn eq(&self, _: &Span) -> bool {
        true
    }
}

impl Eq for Span {}

/// Consistent with the always-true [`PartialEq`]: every span hashes alike.
impl Hash for Span {
    fn hash<H: Hasher>(&self, _: &mut H) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_invisible_to_equality() {
        assert_eq!(Span::new(3, 9), Span::DUMMY);
        assert_eq!(Span::new(1, 2), Span::new(7, 8));
    }

    #[test]
    fn join_ignores_dummy() {
        let s = Span::new(4, 10).join(Span::DUMMY);
        assert_eq!((s.start, s.end), (4, 10));
        let s = Span::DUMMY.join(Span::new(2, 5));
        assert_eq!((s.start, s.end), (2, 5));
        let s = Span::new(4, 10).join(Span::new(2, 5));
        assert_eq!((s.start, s.end), (2, 10));
    }
}
