//! Structured diagnostics for the static analyzer.
//!
//! Every analyzer finding is a [`Diagnostic`] with a stable `LYAxxx` code,
//! a severity, a byte [`Span`] into the query source, a message, and an
//! optional help line. [`render`] produces the caret-style text form shown
//! by the REPL's `:check` command.

use crate::span::Span;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory only: evaluation proceeds.
    Warning,
    /// The query is rejected before evaluation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One static-analysis finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (`LYA000`–`LYA052`); see [`codes`].
    pub code: &'static str,
    /// Whether this rejects the query or merely warns.
    pub severity: Severity,
    /// Byte range in the query source the finding points at (dummy when no
    /// position is known, e.g. for synthesized ASTs).
    pub span: Span,
    /// Human-readable description of the problem.
    pub message: String,
    /// Optional suggestion for fixing the problem.
    pub help: Option<String>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attach a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }
}

/// The stable diagnostic codes emitted by the analyzer, with one-line
/// descriptions. Golden tests pin every code listed in [`codes::ALL`].
pub mod codes {
    /// Lexical or syntax error surfaced through `analyze_src`.
    pub const SYNTAX: &str = "LYA000";
    /// FROM / SIGNATURE / view-parent names a class missing from the schema.
    pub const UNKNOWN_CLASS: &str = "LYA001";
    /// A path step names an attribute absent from the class cone.
    pub const UNKNOWN_ATTRIBUTE: &str = "LYA002";
    /// A variable is used before the left-to-right evaluation binds it.
    pub const UNBOUND_VARIABLE: &str = "LYA003";
    /// A CST predicate path has a static type that is not CST(n).
    pub const NOT_A_CST: &str = "LYA010";
    /// An ordered comparison or arithmetic term uses a non-numeric path.
    pub const NON_NUMERIC: &str = "LYA011";
    /// Explicit CST variable list length differs from the declared dimension.
    pub const DIMENSION_MISMATCH: &str = "LYA012";
    /// A product of two non-constant pseudo-linear terms.
    pub const NONLINEAR_PRODUCT: &str = "LYA013";
    /// MAX/MIN objective uses a variable outside the formula's dimensions.
    pub const OBJECTIVE_DIMENSION: &str = "LYA014";
    /// Negation applied outside the conjunctive family (§3.1 closure).
    pub const NON_CONJUNCTIVE_NEGATION: &str = "LYA020";
    /// (strict) Negation whose operand family cannot be determined statically.
    pub const OPAQUE_NEGATION: &str = "LYA021";
    /// (strict) Projection outside the restricted form (k>1 and n-k>1).
    pub const UNRESTRICTED_PROJECTION: &str = "LYA022";
    /// (strict) Projection eliminates a variable constrained by `!=`.
    pub const DISEQUATION_ELIMINATION: &str = "LYA023";
    /// Duplicate variable in a projection list or explicit CST var list.
    pub const DUPLICATE_CST_VARIABLE: &str = "LYA030";
    /// Two FROM items bind the same variable.
    pub const DUPLICATE_FROM_VARIABLE: &str = "LYA031";
    /// A FROM variable is bound but never used.
    pub const UNUSED_BINDING: &str = "LYA032";
    /// A conjunction of single-variable atoms is trivially unsatisfiable.
    pub const TRIVIALLY_UNSAT: &str = "LYA040";
    /// (opt-in) The LP-backed deep check found a ground formula infeasible.
    pub const LP_UNSAT: &str = "LYA041";
    /// Interval analysis proved a ground conjunction unsatisfiable.
    pub const STATIC_UNSAT: &str = "LYA050";
    /// Interval analysis proved a comparison atom redundant (entailed by
    /// the rest of its conjunction).
    pub const STATIC_ENTAILED: &str = "LYA051";
    /// Interval analysis proved one branch of an OR unsatisfiable (the
    /// disjunct is dead and can be deleted).
    pub const DEAD_DISJUNCT: &str = "LYA052";

    /// Every code with its one-line description, in numeric order.
    pub const ALL: &[(&str, &str)] = &[
        (SYNTAX, "lexical or syntax error"),
        (UNKNOWN_CLASS, "unknown class"),
        (UNKNOWN_ATTRIBUTE, "unknown attribute"),
        (UNBOUND_VARIABLE, "variable used before it is bound"),
        (NOT_A_CST, "path is not a constraint object"),
        (NON_NUMERIC, "non-numeric path in numeric position"),
        (
            DIMENSION_MISMATCH,
            "CST variable list does not match dimension",
        ),
        (NONLINEAR_PRODUCT, "nonlinear product of constraint terms"),
        (
            OBJECTIVE_DIMENSION,
            "objective variable outside formula dimensions",
        ),
        (
            NON_CONJUNCTIVE_NEGATION,
            "negation outside the conjunctive family",
        ),
        (
            OPAQUE_NEGATION,
            "negation of a formula with unknown family (strict)",
        ),
        (UNRESTRICTED_PROJECTION, "unrestricted projection (strict)"),
        (
            DISEQUATION_ELIMINATION,
            "projection eliminates a != variable (strict)",
        ),
        (
            DUPLICATE_CST_VARIABLE,
            "duplicate variable in a CST variable list",
        ),
        (DUPLICATE_FROM_VARIABLE, "duplicate FROM variable"),
        (UNUSED_BINDING, "unused FROM binding"),
        (TRIVIALLY_UNSAT, "trivially unsatisfiable conjunction"),
        (LP_UNSAT, "LP-backed infeasibility (opt-in deep check)"),
        (STATIC_UNSAT, "interval analysis proved a conjunction empty"),
        (STATIC_ENTAILED, "comparison entailed by its conjunction"),
        (DEAD_DISJUNCT, "interval analysis proved an OR branch dead"),
    ];
}

/// Render one diagnostic in caret style against its source text.
///
/// ```text
/// error[LYA001]: unknown class Nonexistent
///   --> 1:15
///    |
///  1 | SELECT X FROM Nonexistent X
///    |               ^^^^^^^^^^^
///    = help: known classes are listed by :schema
/// ```
pub fn render(diag: &Diagnostic, src: &str) -> String {
    let mut out = format!("{}[{}]: {}\n", diag.severity, diag.code, diag.message);
    if !diag.span.is_dummy() && diag.span.start <= src.len() {
        let start = diag.span.start.min(src.len());
        let end = diag.span.end.clamp(start, src.len());
        let line_no = src[..start].bytes().filter(|&b| b == b'\n').count() + 1;
        let line_start = src[..start].rfind('\n').map_or(0, |p| p + 1);
        let line_end = src[start..].find('\n').map_or(src.len(), |p| start + p);
        let line = &src[line_start..line_end];
        let col = src[line_start..start].chars().count() + 1;
        let gutter = line_no.to_string();
        let pad = " ".repeat(gutter.len());
        out.push_str(&format!("  --> {line_no}:{col}\n"));
        out.push_str(&format!(" {pad} |\n"));
        out.push_str(&format!(" {gutter} | {line}\n"));
        let caret_len = src[start..end.min(line_end).max(start)]
            .chars()
            .count()
            .max(1);
        out.push_str(&format!(
            " {pad} | {}{}\n",
            " ".repeat(col - 1),
            "^".repeat(caret_len)
        ));
    }
    if let Some(h) = &diag.help {
        out.push_str(&format!("   = help: {h}\n"));
    }
    out
}

/// Render a batch of diagnostics, separated by blank lines.
pub fn render_all(diags: &[Diagnostic], src: &str) -> String {
    diags
        .iter()
        .map(|d| render(d, src))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caret_points_at_span() {
        let src = "SELECT X FROM Nonexistent X";
        let d = Diagnostic::error(codes::UNKNOWN_CLASS, Span::new(14, 25), "unknown class")
            .with_help("check the schema");
        let r = render(&d, src);
        assert!(r.contains("error[LYA001]"), "{r}");
        assert!(r.contains("--> 1:15"), "{r}");
        assert!(r.contains("^^^^^^^^^^^"), "{r}");
        assert!(r.contains("= help: check the schema"), "{r}");
    }

    #[test]
    fn dummy_span_renders_without_excerpt() {
        let d = Diagnostic::warning(codes::UNUSED_BINDING, Span::DUMMY, "unused");
        let r = render(&d, "SELECT X FROM Desk X");
        assert!(r.starts_with("warning[LYA032]: unused"), "{r}");
        assert!(!r.contains("-->"), "{r}");
    }

    #[test]
    fn multiline_source_locates_line() {
        let src = "SELECT X\nFROM Desk X\nWHERE X.bogus[Y]";
        let start = src.find("bogus").unwrap();
        let d = Diagnostic::error(
            codes::UNKNOWN_ATTRIBUTE,
            Span::new(start, start + 5),
            "unknown attribute",
        );
        let r = render(&d, src);
        assert!(r.contains("--> 3:9"), "{r}");
        assert!(r.contains("WHERE X.bogus[Y]"), "{r}");
    }
}
