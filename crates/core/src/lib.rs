//! # LyriC — querying constraint objects
//!
//! A from-scratch implementation of the data model and query language of
//! Brodsky & Kornatzky, *The LyriC Language: Querying Constraint Objects*
//! (SIGMOD 1995): an object-oriented database in which spatial, temporal
//! and constraint data are first-class **constraint objects** (linear
//! equality/inequality point sets), queried by an XSQL-style language with
//! extended path expressions, CST formulas, entailment (`|=`) and linear-
//! programming operators.
//!
//! ```
//! use lyric::{execute, paper_example};
//!
//! // The office-design database of Figures 1 and 2.
//! let mut db = paper_example::database();
//!
//! // §4.1: the extent of each catalog object in room coordinates,
//! // assuming its center is at (6, 4).
//! let result = execute(
//!     &mut db,
//!     "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
//!      FROM Office_Object CO
//!      WHERE CO.extent[E] AND CO.translation[D]",
//! )
//! .unwrap();
//! let desk_extent = result.rows[0][1].as_cst().unwrap();
//! // The paper's printed answer: ((u,v) | 2 <= u <= 10 ∧ 2 <= v <= 6).
//! assert!(desk_extent.contains_point(&[6.into(), 4.into()]));
//! assert!(!desk_extent.contains_point(&[1.into(), 4.into()]));
//! ```
//!
//! The crate is layered:
//!
//! * [`parse_query`] / [`parse_formula`] — the §4.2 grammar;
//! * [`execute`] — the XSQL-extension semantics: binding enumeration over
//!   path expressions, schema-derived implicit equality constraints
//!   (`scope`), CST-formula instantiation, predicate evaluation, CST-object
//!   creation, `MAX`/`MIN`/`MAX_POINT`/`MIN_POINT`, and
//!   `CREATE VIEW … AS SUBCLASS OF` materialization (including
//!   variable-named views);
//! * [`paper_example`] — the exact schema of Figure 1 and instance of
//!   Figure 2, used by the test suite and benchmarks.

pub mod analyze;
pub mod ast;
pub mod diag;
mod error;
mod eval;
mod explain;
mod formula;
mod lexer;
pub mod paper_example;
mod parser;
mod printer;
mod scope;
pub mod snapshot;
pub mod span;
pub mod storage;
mod token;

pub use analyze::{analyze, analyze_src, AnalyzerOptions};
pub use diag::{Diagnostic, Severity};
pub use error::{LexError, LyricError, ParseError};
pub use eval::{
    execute, execute_parsed, execute_parsed_unchecked, execute_shared, execute_traced,
    execute_traced_with_options, execute_unchecked, execute_with_budget, execute_with_options,
    QueryResult,
};
pub use explain::{execute_explained, execute_explained_with_options, explain, ExplainReport};
pub use lexer::{lex, lex_spanned};
pub use parser::{parse_formula, parse_query};
pub use span::Span;
pub use token::Token;

pub use snapshot::SnapshotExt;

// Re-export the building blocks users need to construct databases.
pub use lyric_constraint as constraint;
pub use lyric_oodb as oodb;

/// The storage engine: the generation-stamped scan index and the binary
/// snapshot container (re-exported so dependents need no direct
/// `lyric-store` dependency).
pub use lyric_store as store;

// Re-export the budget/statistics surface so downstream code does not need
// a direct lyric-engine dependency.
pub use lyric_engine as engine;
pub use lyric_engine::{default_threads, EngineBudget, EngineStats, ExecOptions};

/// Process-lifetime metrics: the global registry, Prometheus exposition,
/// and the structured query log (re-exported so dependents need no
/// direct `lyric-metrics` dependency).
pub use lyric_metrics as metrics;

// Re-export the tracing surface (span trees, renderers, exporters) for
// consumers of [`execute_traced`].
pub use lyric_engine::trace;

// Re-export the flight recorder and in-flight registry so the serving
// surfaces (HTTP endpoints, REPL commands) reach them through one
// dependency.
pub use lyric_engine::flight;
