//! Hand-written lexer for LyriC.
//!
//! Notable choices, all aligned with the paper's notation:
//!
//! * `∧` / `∨` / `¬` lex as `AND` / `OR` / `NOT`, so queries can be typed
//!   exactly as printed in §4.1.
//! * `≤` / `≥` / `≠` lex as `<=` / `>=` / `!=`.
//! * `|=` is the entailment operator; a lone `|` is the projection bar of
//!   `((x,y) | φ)`.
//! * Numbers are exact: `0.5` lexes as the rational `1/2`.

use crate::error::LyricError;
use crate::token::Token;
use lyric_arith::Rational;

/// Tokenize a query string.
pub fn lex(src: &str) -> Result<Vec<Token>, LyricError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                // SQL-style line comment.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            '.' if !matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit()) => {
                out.push(Token::Dot);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '|' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Entails);
                    i += 2;
                } else {
                    out.push(Token::Bar);
                    i += 1;
                }
            }
            '⊨' => {
                out.push(Token::Entails);
                i += 1;
            }
            '∧' => {
                out.push(Token::And);
                i += 1;
            }
            '∨' => {
                out.push(Token::Or);
                i += 1;
            }
            '¬' => {
                out.push(Token::Not);
                i += 1;
            }
            '=' => {
                if chars.get(i + 1) == Some(&'>') {
                    if chars.get(i + 2) == Some(&'>') {
                        out.push(Token::ArrowSet);
                        i += 3;
                    } else {
                        out.push(Token::ArrowScalar);
                        i += 2;
                    }
                } else {
                    out.push(Token::Eq);
                    i += 1;
                }
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Neq);
                i += 2;
            }
            '≠' => {
                out.push(Token::Neq);
                i += 1;
            }
            '≤' => {
                out.push(Token::Le);
                i += 1;
            }
            '≥' => {
                out.push(Token::Ge);
                i += 1;
            }
            '<' => match chars.get(i + 1) {
                Some('=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some('>') => {
                    out.push(Token::Neq);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(LyricError::lex("unterminated string literal"));
                }
                out.push(Token::Str(chars[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut j = i;
                let mut seen_dot = false;
                while j < chars.len()
                    && (chars[j].is_ascii_digit() || (chars[j] == '.' && !seen_dot))
                {
                    if chars[j] == '.' {
                        // A dot not followed by a digit is a path separator.
                        if !matches!(chars.get(j + 1), Some(d) if d.is_ascii_digit()) {
                            break;
                        }
                        seen_dot = true;
                    }
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                let value: Rational = text
                    .parse()
                    .map_err(|_| LyricError::lex(format!("bad number literal {text}")))?;
                out.push(Token::Number(value));
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let word: String = chars[start..j].iter().collect();
                // MAX_POINT / MIN_POINT are single identifiers with an
                // underscore; keyword() sees the full word.
                match Token::keyword(&word) {
                    Some(k) => out.push(k),
                    None => out.push(Token::Ident(word)),
                }
                i = j;
            }
            other => {
                return Err(LyricError::lex(format!("unexpected character {other:?}")));
            }
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(toks("select")[0], Token::Select);
        assert_eq!(toks("SELECT")[0], Token::Select);
        assert_eq!(toks("Select")[0], Token::Select);
        assert_eq!(toks("max_point")[0], Token::MaxPoint);
    }

    #[test]
    fn idents_and_paths() {
        let t = toks("X.drawer[Y].color['red']");
        assert_eq!(
            t,
            vec![
                Token::Ident("X".into()),
                Token::Dot,
                Token::Ident("drawer".into()),
                Token::LBracket,
                Token::Ident("Y".into()),
                Token::RBracket,
                Token::Dot,
                Token::Ident("color".into()),
                Token::LBracket,
                Token::Str("red".into()),
                Token::RBracket,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn numbers_exact() {
        assert_eq!(toks("0.5")[0], Token::Number(Rational::from_pair(1, 2)));
        assert_eq!(toks("12")[0], Token::Number(Rational::from_int(12)));
        // A trailing dot is a path separator, not a decimal point.
        let t = toks("x.y");
        assert_eq!(t[1], Token::Dot);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<= < >= > = != <> |= |")[..9],
            [
                Token::Le,
                Token::Lt,
                Token::Ge,
                Token::Gt,
                Token::Eq,
                Token::Neq,
                Token::Neq,
                Token::Entails,
                Token::Bar
            ]
        );
    }

    #[test]
    fn unicode_paper_notation() {
        assert_eq!(
            toks("x ≤ 1 ∧ y ≥ 0 ∨ ¬ z ≠ 2 ⊨ w")[..11],
            [
                Token::Ident("x".into()),
                Token::Le,
                Token::Number(Rational::from_int(1)),
                Token::And,
                Token::Ident("y".into()),
                Token::Ge,
                Token::Number(Rational::from_int(0)),
                Token::Or,
                Token::Not,
                Token::Ident("z".into()),
                Token::Neq,
            ]
        );
    }

    #[test]
    fn strings_and_errors() {
        assert_eq!(toks("'standard desk'")[0], Token::Str("standard desk".into()));
        assert!(lex("'unterminated").is_err());
        assert!(lex("x # y").is_err());
    }

    #[test]
    fn comments_skipped() {
        let t = toks("SELECT -- a comment\n X");
        assert_eq!(t, vec![Token::Select, Token::Ident("X".into()), Token::Eof]);
    }

    #[test]
    fn signature_arrows() {
        assert_eq!(toks("=>")[0], Token::ArrowScalar);
        assert_eq!(toks("=>>")[0], Token::ArrowSet);
    }
}
