//! Hand-written lexer for LyriC.
//!
//! Notable choices, all aligned with the paper's notation:
//!
//! * `∧` / `∨` / `¬` lex as `AND` / `OR` / `NOT`, so queries can be typed
//!   exactly as printed in §4.1.
//! * `≤` / `≥` / `≠` lex as `<=` / `>=` / `!=`.
//! * `|=` is the entailment operator; a lone `|` is the projection bar of
//!   `((x,y) | φ)`.
//! * Numbers are exact: `0.5` lexes as the rational `1/2`.

use crate::error::LyricError;
use crate::span::Span;
use crate::token::Token;
use lyric_arith::Rational;

/// Tokenize a query string.
pub fn lex(src: &str) -> Result<Vec<Token>, LyricError> {
    lex_spanned(src).map(|(toks, _)| toks)
}

/// Tokenize a query string, also returning the byte span of each token.
///
/// The two vectors are parallel: `spans[i]` covers `toks[i]` in `src`
/// (half-open byte range). The trailing [`Token::Eof`] gets the empty span
/// at the end of the input.
pub fn lex_spanned(src: &str) -> Result<(Vec<Token>, Vec<Span>), LyricError> {
    let mut out = Vec::new();
    let mut spans = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    // Byte offset of each char, plus one-past-the-end, so spans are byte
    // ranges even in the presence of multi-byte paper notation (≤, ∧, …).
    let mut byte_of: Vec<usize> = src.char_indices().map(|(b, _)| b).collect();
    byte_of.push(src.len());
    let mut i = 0usize;
    macro_rules! emit {
        ($tok:expr, $start:expr) => {{
            out.push($tok);
            spans.push(Span::new(byte_of[$start], byte_of[i]));
        }};
    }
    while i < chars.len() {
        let c = chars[i];
        let s = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                // SQL-style line comment.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                i += 1;
                emit!(Token::LParen, s);
            }
            ')' => {
                i += 1;
                emit!(Token::RParen, s);
            }
            '[' => {
                i += 1;
                emit!(Token::LBracket, s);
            }
            ']' => {
                i += 1;
                emit!(Token::RBracket, s);
            }
            '.' if !matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit()) => {
                i += 1;
                emit!(Token::Dot, s);
            }
            ',' => {
                i += 1;
                emit!(Token::Comma, s);
            }
            '+' => {
                i += 1;
                emit!(Token::Plus, s);
            }
            '-' => {
                i += 1;
                emit!(Token::Minus, s);
            }
            '*' => {
                i += 1;
                emit!(Token::Star, s);
            }
            '|' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    emit!(Token::Entails, s);
                } else {
                    i += 1;
                    emit!(Token::Bar, s);
                }
            }
            '⊨' => {
                i += 1;
                emit!(Token::Entails, s);
            }
            '∧' => {
                i += 1;
                emit!(Token::And, s);
            }
            '∨' => {
                i += 1;
                emit!(Token::Or, s);
            }
            '¬' => {
                i += 1;
                emit!(Token::Not, s);
            }
            '=' => {
                if chars.get(i + 1) == Some(&'>') {
                    if chars.get(i + 2) == Some(&'>') {
                        i += 3;
                        emit!(Token::ArrowSet, s);
                    } else {
                        i += 2;
                        emit!(Token::ArrowScalar, s);
                    }
                } else {
                    i += 1;
                    emit!(Token::Eq, s);
                }
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                i += 2;
                emit!(Token::Neq, s);
            }
            '≠' => {
                i += 1;
                emit!(Token::Neq, s);
            }
            '≤' => {
                i += 1;
                emit!(Token::Le, s);
            }
            '≥' => {
                i += 1;
                emit!(Token::Ge, s);
            }
            '<' => match chars.get(i + 1) {
                Some('=') => {
                    i += 2;
                    emit!(Token::Le, s);
                }
                Some('>') => {
                    i += 2;
                    emit!(Token::Neq, s);
                }
                _ => {
                    i += 1;
                    emit!(Token::Lt, s);
                }
            },
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    emit!(Token::Ge, s);
                } else {
                    i += 1;
                    emit!(Token::Gt, s);
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(LyricError::lex_at(
                        "unterminated string literal",
                        Span::new(byte_of[s], src.len()),
                    ));
                }
                i = j + 1;
                emit!(Token::Str(chars[start..j].iter().collect()), s);
            }
            c if c.is_ascii_digit() || c == '.' => {
                let mut j = i;
                let mut seen_dot = false;
                while j < chars.len()
                    && (chars[j].is_ascii_digit() || (chars[j] == '.' && !seen_dot))
                {
                    if chars[j] == '.' {
                        // A dot not followed by a digit is a path separator.
                        if !matches!(chars.get(j + 1), Some(d) if d.is_ascii_digit()) {
                            break;
                        }
                        seen_dot = true;
                    }
                    j += 1;
                }
                let text: String = chars[s..j].iter().collect();
                let value: Rational = text.parse().map_err(|_| {
                    LyricError::lex_at(
                        format!("bad number literal {text}"),
                        Span::new(byte_of[s], byte_of[j]),
                    )
                })?;
                i = j;
                emit!(Token::Number(value), s);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let word: String = chars[s..j].iter().collect();
                i = j;
                // MAX_POINT / MIN_POINT are single identifiers with an
                // underscore; keyword() sees the full word.
                match Token::keyword(&word) {
                    Some(k) => emit!(k, s),
                    None => emit!(Token::Ident(word), s),
                }
            }
            other => {
                return Err(LyricError::lex_at(
                    format!("unexpected character {other:?}"),
                    Span::new(byte_of[s], byte_of[s + 1]),
                ));
            }
        }
    }
    out.push(Token::Eof);
    spans.push(Span::new(src.len(), src.len()));
    Ok((out, spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(toks("select")[0], Token::Select);
        assert_eq!(toks("SELECT")[0], Token::Select);
        assert_eq!(toks("Select")[0], Token::Select);
        assert_eq!(toks("max_point")[0], Token::MaxPoint);
    }

    #[test]
    fn idents_and_paths() {
        let t = toks("X.drawer[Y].color['red']");
        assert_eq!(
            t,
            vec![
                Token::Ident("X".into()),
                Token::Dot,
                Token::Ident("drawer".into()),
                Token::LBracket,
                Token::Ident("Y".into()),
                Token::RBracket,
                Token::Dot,
                Token::Ident("color".into()),
                Token::LBracket,
                Token::Str("red".into()),
                Token::RBracket,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn numbers_exact() {
        assert_eq!(toks("0.5")[0], Token::Number(Rational::from_pair(1, 2)));
        assert_eq!(toks("12")[0], Token::Number(Rational::from_int(12)));
        // A trailing dot is a path separator, not a decimal point.
        let t = toks("x.y");
        assert_eq!(t[1], Token::Dot);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<= < >= > = != <> |= |")[..9],
            [
                Token::Le,
                Token::Lt,
                Token::Ge,
                Token::Gt,
                Token::Eq,
                Token::Neq,
                Token::Neq,
                Token::Entails,
                Token::Bar
            ]
        );
    }

    #[test]
    fn unicode_paper_notation() {
        assert_eq!(
            toks("x ≤ 1 ∧ y ≥ 0 ∨ ¬ z ≠ 2 ⊨ w")[..11],
            [
                Token::Ident("x".into()),
                Token::Le,
                Token::Number(Rational::from_int(1)),
                Token::And,
                Token::Ident("y".into()),
                Token::Ge,
                Token::Number(Rational::from_int(0)),
                Token::Or,
                Token::Not,
                Token::Ident("z".into()),
                Token::Neq,
            ]
        );
    }

    #[test]
    fn strings_and_errors() {
        assert_eq!(
            toks("'standard desk'")[0],
            Token::Str("standard desk".into())
        );
        assert!(lex("'unterminated").is_err());
        assert!(lex("x # y").is_err());
    }

    #[test]
    fn comments_skipped() {
        let t = toks("SELECT -- a comment\n X");
        assert_eq!(t, vec![Token::Select, Token::Ident("X".into()), Token::Eof]);
    }

    #[test]
    fn signature_arrows() {
        assert_eq!(toks("=>")[0], Token::ArrowScalar);
        assert_eq!(toks("=>>")[0], Token::ArrowSet);
    }
}
