//! Textual persistence for constraint-object databases.
//!
//! [`save`] renders a [`Database`] — schema, extents and objects,
//! including every constraint object — as a line-oriented text format;
//! [`load`] reads it back. Constraint values are serialized as LyriC
//! projection formulas (`cst:((u,v) | u >= 0 AND ...)`) and re-parsed
//! with the ordinary LyriC formula parser, so the dump is human-readable
//! and hand-editable.
//!
//! Format sketch:
//!
//! ```text
//! LYRIC-DB 1
//! CLASS Desk
//!   PARENT Office_Object
//!   ATTR drawer SCALAR CLASS Drawer RENAME p,q
//!   ATTR drawer_center SCALAR CST p,q
//! END
//! INSTANCE Color str:'red'
//! OBJECT named:standard_desk CLASS Desk
//!   SET color = str:'red'
//!   SET extent = cst:((w,z) | w >= -4 AND w <= 4 AND z >= -2 AND z <= 2)
//! END
//! ```
//!
//! Round-tripping is exact for everything except CST oid *display names*
//! inside `Func` oids' canonical forms — equality of reloaded databases is
//! asserted at the level of schema, extents, and attribute values.

use crate::ast::Formula;
use crate::error::LyricError;
use crate::parser::parse_formula;
use lyric_constraint::{Atom, Conjunction, CstObject, Var};
use lyric_oodb::{AttrDef, AttrTarget, ClassDef, Database, Oid, Schema, Value};
use std::fmt::Write as _;

/// Serialize a database to the textual format.
///
/// Fails if a string oid contains a quote or newline (the format is
/// line-oriented and uses single-quoted strings).
pub fn save(db: &Database) -> Result<String, LyricError> {
    let mut out = String::from("LYRIC-DB 1\n\n");
    // ---- schema ----
    for name in db.schema().class_names() {
        let def = db.schema().class(name).expect("listed class exists");
        writeln!(out, "CLASS {name}").expect("string write");
        if !def.interface.is_empty() {
            writeln!(out, "  INTERFACE {}", join_vars(&def.interface)).expect("string write");
        }
        for p in &def.parents {
            writeln!(out, "  PARENT {p}").expect("string write");
        }
        if let Some(d) = def.cst_dim {
            writeln!(out, "  CSTDIM {d}").expect("string write");
        }
        for attr in def.attributes.values() {
            let card = if attr.is_set { "SET" } else { "SCALAR" };
            match &attr.target {
                AttrTarget::Cst { vars } => {
                    writeln!(out, "  ATTR {} {card} CST {}", attr.name, join_vars(vars))
                        .expect("string write");
                }
                AttrTarget::Class { class, actuals } => match actuals {
                    Some(a) => writeln!(
                        out,
                        "  ATTR {} {card} CLASS {class} RENAME {}",
                        attr.name,
                        join_vars(a)
                    )
                    .expect("string write"),
                    None => writeln!(out, "  ATTR {} {card} CLASS {class}", attr.name)
                        .expect("string write"),
                },
            }
        }
        writeln!(out, "END\n").expect("string write");
    }
    // ---- dataless extent members (literal instances, view members) ----
    for class in db.schema().class_names() {
        for oid in db.direct_members(class) {
            let is_object_here = db.object(&oid).map(|d| d.class() == class).unwrap_or(false);
            if !is_object_here {
                writeln!(out, "INSTANCE {class} {}", write_oid(&oid)?).expect("string write");
            }
        }
    }
    writeln!(out).expect("string write");
    // ---- objects ----
    for (oid, data) in db.objects() {
        writeln!(out, "OBJECT {} CLASS {}", write_oid(oid)?, data.class()).expect("string write");
        for (attr, value) in data.attrs() {
            match value {
                Value::Scalar(v) => {
                    writeln!(out, "  SET {attr} = {}", write_oid(v)?).expect("string write")
                }
                Value::Set(s) => {
                    for v in s {
                        writeln!(out, "  ADD {attr} = {}", write_oid(v)?).expect("string write");
                    }
                    if s.is_empty() {
                        writeln!(out, "  EMPTYSET {attr}").expect("string write");
                    }
                }
            }
        }
        writeln!(out, "END\n").expect("string write");
    }
    Ok(out)
}

/// Load a database from the textual format.
pub fn load(text: &str) -> Result<Database, LyricError> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().ok_or_else(|| storage_err("empty input"))?;
    if header != "LYRIC-DB 1" {
        return Err(storage_err(format!("bad header {header:?}")));
    }
    type RawObject = (Oid, String, Vec<(String, Value)>);
    let mut schema = Schema::new();
    let mut instances: Vec<(String, Oid)> = Vec::new();
    let mut objects: Vec<RawObject> = Vec::new();

    while let Some(line) = lines.next() {
        if let Some(name) = line.strip_prefix("CLASS ") {
            let mut def = ClassDef::new(name.trim());
            for body in lines.by_ref() {
                if body == "END" {
                    break;
                }
                if let Some(v) = body.strip_prefix("INTERFACE ") {
                    def = def.interface(split_vars(v));
                } else if let Some(p) = body.strip_prefix("PARENT ") {
                    def = def.is_a(p.trim());
                } else if let Some(d) = body.strip_prefix("CSTDIM ") {
                    let dim: usize = d.trim().parse().map_err(|_| storage_err("bad CSTDIM"))?;
                    def = def.cst_class(dim);
                } else if let Some(a) = body.strip_prefix("ATTR ") {
                    def = def.attr(parse_attr(a)?);
                } else {
                    return Err(storage_err(format!("unexpected class line {body:?}")));
                }
            }
            schema.add_class(def).map_err(LyricError::Db)?;
        } else if let Some(rest) = line.strip_prefix("INSTANCE ") {
            let (class, oid_text) = rest
                .split_once(' ')
                .ok_or_else(|| storage_err("INSTANCE needs class and oid"))?;
            instances.push((class.to_string(), parse_oid(oid_text.trim())?));
        } else if let Some(rest) = line.strip_prefix("OBJECT ") {
            let (oid_text, class) = rest
                .rsplit_once(" CLASS ")
                .ok_or_else(|| storage_err("OBJECT needs `CLASS <name>`"))?;
            let oid = parse_oid(oid_text.trim())?;
            let mut attrs: Vec<(String, Value)> = Vec::new();
            for body in lines.by_ref() {
                if body == "END" {
                    break;
                }
                if let Some(rest) = body.strip_prefix("SET ") {
                    let (attr, value) = parse_assignment(rest)?;
                    attrs.push((attr, Value::Scalar(value)));
                } else if let Some(rest) = body.strip_prefix("ADD ") {
                    let (attr, value) = parse_assignment(rest)?;
                    match attrs.iter_mut().find(|(a, _)| *a == attr) {
                        Some((_, Value::Set(s))) => {
                            s.insert(value);
                        }
                        Some(_) => {
                            return Err(storage_err(format!("attribute {attr} mixes SET and ADD")))
                        }
                        None => attrs.push((attr, Value::set([value]))),
                    }
                } else if let Some(attr) = body.strip_prefix("EMPTYSET ") {
                    attrs.push((attr.trim().to_string(), Value::set([])));
                } else {
                    return Err(storage_err(format!("unexpected object line {body:?}")));
                }
            }
            objects.push((oid, class.trim().to_string(), attrs));
        } else {
            return Err(storage_err(format!("unexpected line {line:?}")));
        }
    }

    let mut db = Database::new(schema).map_err(LyricError::Db)?;
    for (class, oid) in instances {
        db.declare_instance(&class, oid).map_err(LyricError::Db)?;
    }
    for (oid, class, attrs) in objects {
        db.insert(oid, &class, attrs).map_err(LyricError::Db)?;
    }
    db.validate_references().map_err(LyricError::Db)?;
    Ok(db)
}

fn storage_err(msg: impl std::fmt::Display) -> LyricError {
    LyricError::parse(format!("storage: {msg}"))
}

fn join_vars(vars: &[Var]) -> String {
    vars.iter().map(Var::name).collect::<Vec<_>>().join(",")
}

fn split_vars(text: &str) -> Vec<Var> {
    text.split(',').map(|v| Var::new(v.trim())).collect()
}

fn parse_attr(text: &str) -> Result<AttrDef, LyricError> {
    // <name> SCALAR|SET CST v,... | CLASS <c> [RENAME v,...]
    let mut parts = text.split_whitespace();
    let name = parts
        .next()
        .ok_or_else(|| storage_err("ATTR needs a name"))?;
    let card = parts
        .next()
        .ok_or_else(|| storage_err("ATTR needs a cardinality"))?;
    let is_set = match card {
        "SCALAR" => false,
        "SET" => true,
        other => return Err(storage_err(format!("bad cardinality {other:?}"))),
    };
    let kind = parts
        .next()
        .ok_or_else(|| storage_err("ATTR needs a target"))?;
    let target = match kind {
        "CST" => {
            let vars = parts
                .next()
                .ok_or_else(|| storage_err("CST needs variables"))?;
            AttrTarget::Cst {
                vars: split_vars(vars),
            }
        }
        "CLASS" => {
            let class = parts
                .next()
                .ok_or_else(|| storage_err("CLASS needs a name"))?;
            match parts.next() {
                Some("RENAME") => {
                    let vars = parts
                        .next()
                        .ok_or_else(|| storage_err("RENAME needs variables"))?;
                    AttrTarget::class_renamed(class, split_vars(vars))
                }
                Some(other) => return Err(storage_err(format!("unexpected token {other:?}"))),
                None => AttrTarget::class(class),
            }
        }
        other => return Err(storage_err(format!("bad attribute target {other:?}"))),
    };
    Ok(AttrDef {
        name: name.to_string(),
        is_set,
        target,
    })
}

fn parse_assignment(text: &str) -> Result<(String, Oid), LyricError> {
    let (attr, value) = text
        .split_once('=')
        .ok_or_else(|| storage_err("assignment needs `=`"))?;
    Ok((attr.trim().to_string(), parse_oid(value.trim())?))
}

// ------------------------------------------------------------------ oids

fn write_oid(oid: &Oid) -> Result<String, LyricError> {
    Ok(match oid {
        Oid::Int(i) => format!("int:{i}"),
        Oid::Rat(r) => format!("rat:{r}"),
        Oid::Bool(b) => format!("bool:{b}"),
        Oid::Str(s) => {
            if s.contains('\'') || s.contains('\n') {
                return Err(storage_err(format!(
                    "string oid {s:?} contains a quote or newline"
                )));
            }
            format!("str:'{s}'")
        }
        Oid::Named(n) => format!("named:{n}"),
        Oid::Func(name, args) => {
            let parts: Result<Vec<String>, LyricError> = args.iter().map(write_oid).collect();
            format!("func:{name}({})", parts?.join(";"))
        }
        Oid::Cst(c) => format!("cst:{}", write_cst(c.object())),
    })
}

/// Render a constraint object as a parseable LyriC projection formula.
fn write_cst(c: &CstObject) -> String {
    let mut out = format!("(({}) | ", join_vars(c.free()));
    if c.disjuncts().is_empty() {
        out.push_str("1 = 0");
    } else {
        for (i, d) in c.disjuncts().iter().enumerate() {
            if i > 0 {
                out.push_str(" OR ");
            }
            if d.atoms().is_empty() {
                out.push_str("0 = 0");
            } else {
                let atoms: Vec<String> = d.atoms().iter().map(write_atom).collect();
                out.push_str(&atoms.join(" AND "));
            }
        }
    }
    out.push(')');
    out
}

fn write_atom(a: &Atom) -> String {
    // Atom's Display is already parseable LyriC (`x + 2y <= 5`).
    a.to_string()
}

fn parse_oid(text: &str) -> Result<Oid, LyricError> {
    if let Some(i) = text.strip_prefix("int:") {
        return Ok(Oid::Int(i.parse().map_err(|_| storage_err("bad int oid"))?));
    }
    if let Some(r) = text.strip_prefix("rat:") {
        return Ok(Oid::Rat(
            r.parse().map_err(|_| storage_err("bad rational oid"))?,
        ));
    }
    if let Some(b) = text.strip_prefix("bool:") {
        return Ok(Oid::Bool(
            b.parse().map_err(|_| storage_err("bad bool oid"))?,
        ));
    }
    if let Some(s) = text.strip_prefix("str:") {
        let inner = s
            .strip_prefix('\'')
            .and_then(|s| s.strip_suffix('\''))
            .ok_or_else(|| storage_err("string oid must be single-quoted"))?;
        return Ok(Oid::str(inner));
    }
    if let Some(n) = text.strip_prefix("named:") {
        return Ok(Oid::named(n));
    }
    if let Some(f) = text.strip_prefix("func:") {
        let open = f.find('(').ok_or_else(|| storage_err("func oid needs ("))?;
        let name = &f[..open];
        let inner = f[open + 1..]
            .strip_suffix(')')
            .ok_or_else(|| storage_err("func oid needs )"))?;
        let mut args = Vec::new();
        // Split on top-level ';' (func oids nest).
        let mut depth = 0usize;
        let mut start = 0usize;
        for (i, ch) in inner.char_indices() {
            match ch {
                '(' => depth += 1,
                ')' => depth = depth.saturating_sub(1),
                ';' if depth == 0 => {
                    args.push(parse_oid(inner[start..i].trim())?);
                    start = i + 1;
                }
                _ => {}
            }
        }
        if !inner.trim().is_empty() {
            args.push(parse_oid(inner[start..].trim())?);
        }
        return Ok(Oid::func(name, args));
    }
    if let Some(c) = text.strip_prefix("cst:") {
        let formula = parse_formula(c.trim())?;
        return Ok(Oid::cst(formula_to_cst(&formula)?));
    }
    Err(storage_err(format!("unknown oid syntax {text:?}")))
}

/// Convert a database-free formula (no path expressions) into a constraint
/// object. The storage format only emits `Proj(Or(And(Chain…)))` shapes,
/// but any path-free formula converts.
pub(crate) fn formula_to_cst(f: &Formula) -> Result<CstObject, LyricError> {
    match f {
        Formula::Proj { vars, body, .. } => {
            let inner = formula_to_cst(body)?;
            Ok(inner.project(vars.iter().map(Var::new).collect()))
        }
        Formula::And(a, b) => Ok(formula_to_cst(a)?.and(&formula_to_cst(b)?)),
        Formula::Or(a, b) => Ok(formula_to_cst(a)?.or(&formula_to_cst(b)?)),
        Formula::Not(a) => Ok(formula_to_cst(a)?.negate()?),
        Formula::Chain { first, rest, .. } => {
            let mut atoms = Vec::new();
            let mut prev = arith_to_linexpr_pure(first)?;
            for (op, next) in rest {
                let rhs = arith_to_linexpr_pure(next)?;
                let relop = match op {
                    crate::ast::CRelOp::Eq => lyric_constraint::RelOp::Eq,
                    crate::ast::CRelOp::Neq => lyric_constraint::RelOp::Neq,
                    crate::ast::CRelOp::Le => lyric_constraint::RelOp::Le,
                    crate::ast::CRelOp::Lt => lyric_constraint::RelOp::Lt,
                    crate::ast::CRelOp::Ge => lyric_constraint::RelOp::Ge,
                    crate::ast::CRelOp::Gt => lyric_constraint::RelOp::Gt,
                };
                atoms.push(Atom::new(prev.clone(), relop, rhs.clone()));
                prev = rhs;
            }
            let conj = Conjunction::of(atoms);
            let free: Vec<Var> = conj.vars().into_iter().collect();
            Ok(CstObject::from_conjunction(free, conj))
        }
        Formula::Pred { .. } => Err(storage_err(
            "stored constraint formulas cannot reference database paths",
        )),
    }
}

pub(crate) fn arith_to_linexpr_pure(
    a: &crate::ast::Arith,
) -> Result<lyric_constraint::LinExpr, LyricError> {
    use crate::ast::Arith;
    use lyric_constraint::LinExpr;
    match a {
        Arith::Num(n) => Ok(LinExpr::constant(n.clone())),
        Arith::Var(v) => Ok(LinExpr::var(Var::new(v))),
        Arith::Add(x, y) => Ok(&arith_to_linexpr_pure(x)? + &arith_to_linexpr_pure(y)?),
        Arith::Sub(x, y) => Ok(&arith_to_linexpr_pure(x)? - &arith_to_linexpr_pure(y)?),
        Arith::Neg(x) => Ok(-&arith_to_linexpr_pure(x)?),
        Arith::Mul(x, y) => {
            let l = arith_to_linexpr_pure(x)?;
            let r = arith_to_linexpr_pure(y)?;
            if l.is_constant() {
                Ok(r.scale(l.constant_term()))
            } else if r.is_constant() {
                Ok(l.scale(r.constant_term()))
            } else {
                Err(storage_err("nonlinear product in stored constraint"))
            }
        }
        Arith::PathConst(_) => Err(storage_err(
            "stored constraint formulas cannot reference database paths",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    fn databases_equal(a: &Database, b: &Database) -> bool {
        // Schema classes with full definitions.
        let names_a: Vec<&str> = a.schema().class_names().collect();
        let names_b: Vec<&str> = b.schema().class_names().collect();
        if names_a != names_b {
            return false;
        }
        for n in &names_a {
            if a.schema().class(n) != b.schema().class(n) {
                return false;
            }
        }
        // Extents per class.
        for n in &names_a {
            if a.extent(n) != b.extent(n) {
                return false;
            }
        }
        // Objects and attribute values.
        let objs_a: Vec<_> = a.objects().collect();
        let objs_b: Vec<_> = b.objects().collect();
        objs_a == objs_b
    }

    #[test]
    fn paper_database_roundtrips() {
        let db = paper_example::database();
        let text = save(&db).expect("serializes");
        let reloaded = load(&text).expect("parses");
        assert!(databases_equal(&db, &reloaded), "round-trip drift");
        // Idempotence of the textual form.
        assert_eq!(text, save(&reloaded).expect("serializes again"));
    }

    #[test]
    fn queries_agree_after_reload() {
        let mut db = paper_example::database();
        let text = save(&db).expect("serializes");
        let mut reloaded = load(&text).expect("parses");
        let q = "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
                 FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]";
        let before = crate::execute(&mut db, q).expect("query on original");
        let after = crate::execute(&mut reloaded, q).expect("query on reload");
        assert_eq!(before, after);
    }

    #[test]
    fn func_and_special_oids_roundtrip() {
        let f = Oid::func(
            "pair",
            vec![
                Oid::named("a"),
                Oid::func("inner", vec![Oid::Int(-3), Oid::Bool(true)]),
                Oid::Rat(lyric_arith::Rational::from_pair(7, 3)),
            ],
        );
        let text = write_oid(&f).expect("serializes");
        assert_eq!(parse_oid(&text).expect("parses"), f);
        // Empty-argument function.
        let unit = Oid::func("unit", vec![]);
        assert_eq!(parse_oid(&write_oid(&unit).unwrap()).unwrap(), unit);
    }

    #[test]
    fn empty_and_universal_constraints_roundtrip() {
        let empty = Oid::cst(CstObject::bottom(vec![Var::new("x")]));
        let text = write_oid(&empty).expect("serializes");
        assert_eq!(parse_oid(&text).expect("parses"), empty);
        let top = Oid::cst(CstObject::top(vec![Var::new("x"), Var::new("y")]));
        let text = write_oid(&top).expect("serializes");
        assert_eq!(parse_oid(&text).expect("parses"), top);
    }

    #[test]
    fn quantified_constraints_roundtrip() {
        use lyric_constraint::LinExpr;
        // A stored object with a bound variable: serialized as a formula
        // over free+bound vars under the free projection.
        let obj = CstObject::new(
            vec![Var::new("u")],
            [Conjunction::of([
                Atom::le(
                    LinExpr::var(Var::new("u")),
                    LinExpr::var(Var::new("hidden_a")),
                ),
                Atom::le(
                    LinExpr::var(Var::new("hidden_a")),
                    LinExpr::var(Var::new("hidden_b")),
                ),
                Atom::le(LinExpr::var(Var::new("hidden_b")), LinExpr::from(0)),
                Atom::ge(LinExpr::var(Var::new("hidden_a")), LinExpr::from(-10)),
                Atom::ge(LinExpr::var(Var::new("hidden_b")), LinExpr::from(-10)),
            ])],
        );
        let oid = Oid::cst(obj);
        let text = write_oid(&oid).expect("serializes");
        let back = parse_oid(&text).expect("parses");
        assert_eq!(back, oid);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(load("").is_err());
        assert!(load("NOT-A-HEADER").is_err());
        assert!(load("LYRIC-DB 1\nGARBAGE LINE").is_err());
        assert!(parse_oid("mystery:3").is_err());
        assert!(parse_oid("str:unquoted").is_err());
        assert!(write_oid(&Oid::str("it's quoted")).is_err());
        // Path references are not valid stored constraints.
        assert!(parse_oid("cst:((u) | X.extent(u))").is_err());
    }
}
