//! Errors of the LyriC language layer.

use crate::diag::Diagnostic;
use crate::span::Span;
use lyric_constraint::ConstraintError;
use lyric_oodb::DbError;
use std::fmt;

/// Payload of [`LyricError::Lex`]: the message plus the offending byte
/// range in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable description of the lexical problem.
    pub message: String,
    /// Byte range of the offending input (dummy when unknown).
    pub span: Span,
}

/// Payload of [`LyricError::Parse`]: the message, the offending byte range,
/// and the token set the parser would have accepted at that point.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description of the syntax problem.
    pub message: String,
    /// Byte range of the offending token (dummy when unknown).
    pub span: Span,
    /// Display forms of the tokens that would have been accepted.
    pub expected: Vec<String>,
    /// Display form of the token actually found (empty when unknown).
    pub found: String,
}

/// Any error raised while lexing, parsing, analyzing, or evaluating a
/// LyriC query.
#[derive(Debug, Clone, PartialEq)]
pub enum LyricError {
    /// Lexical error.
    Lex(LexError),
    /// Syntax error with the offending token and expectation.
    Parse(ParseError),
    /// The static analyzer rejected the query before evaluation. The
    /// vector holds every error-severity [`Diagnostic`] found.
    Analysis(Vec<Diagnostic>),
    /// A variable was used before anything bound it (XSQL evaluates
    /// conjunctions left to right; see the evaluator docs).
    UnboundVariable(String),
    /// A path step used an attribute the class does not declare.
    /// `searched` lists the full IS-A chain inspected, starting at the
    /// declaring (static) class of the step.
    UnknownAttribute {
        class: String,
        attr: String,
        searched: Vec<String>,
    },
    /// FROM referenced a class missing from the schema.
    UnknownClass(String),
    /// A pseudo-linear formula used a path that did not evaluate to a
    /// numeric constant, or a CST predicate path that did not evaluate to a
    /// constraint object.
    TypeError(String),
    /// A CST predicate's explicit variable list does not match the
    /// dimension of the referenced object.
    DimensionMismatch {
        expected: usize,
        got: usize,
        what: String,
    },
    /// `MAX`/`MIN` over an unbounded objective.
    Unbounded,
    /// `MAX_POINT`/`MIN_POINT` when the optimum is a supremum that no point
    /// attains (strict constraints).
    NotAttained,
    /// `MAX`/`MIN` over an empty constraint set.
    EmptyOptimization,
    /// Underlying database error (e.g. during view materialization).
    Db(DbError),
    /// Underlying constraint-engine error.
    Constraint(ConstraintError),
    /// The query crossed an [`EngineBudget`](lyric_engine::EngineBudget)
    /// limit and was aborted. `limit`/`consumed` are in the resource's
    /// native unit (counts, or milliseconds for the wall-clock deadline).
    BudgetExceeded {
        resource: lyric_engine::Resource,
        limit: u64,
        consumed: u64,
    },
    /// A binary snapshot failed structural verification (bad magic,
    /// version skew, checksum mismatch, truncation, bad section layout,
    /// or an undecodable payload). No partially-decoded database ever
    /// escapes a load that returns this.
    SnapshotCorrupt(String),
}

impl LyricError {
    /// A lexical error with no span information.
    pub fn lex(msg: impl Into<String>) -> LyricError {
        LyricError::lex_at(msg, Span::DUMMY)
    }

    /// A lexical error at a known byte range.
    pub fn lex_at(msg: impl Into<String>, span: Span) -> LyricError {
        LyricError::Lex(LexError {
            message: msg.into(),
            span,
        })
    }

    /// A syntax error with no span information.
    pub fn parse(msg: impl Into<String>) -> LyricError {
        LyricError::Parse(ParseError {
            message: msg.into(),
            span: Span::DUMMY,
            expected: Vec::new(),
            found: String::new(),
        })
    }

    /// A syntax error at a known byte range, with the expected-token set.
    pub fn parse_at(
        msg: impl Into<String>,
        span: Span,
        expected: Vec<String>,
        found: impl Into<String>,
    ) -> LyricError {
        LyricError::Parse(ParseError {
            message: msg.into(),
            span,
            expected,
            found: found.into(),
        })
    }

    /// A type error (no span; runtime type errors are value-dependent).
    pub fn type_error(msg: impl Into<String>) -> LyricError {
        LyricError::TypeError(msg.into())
    }
}

impl From<DbError> for LyricError {
    fn from(e: DbError) -> Self {
        LyricError::Db(e)
    }
}

impl From<ConstraintError> for LyricError {
    fn from(e: ConstraintError) -> Self {
        LyricError::Constraint(e)
    }
}

impl From<lyric_store::snapshot::SnapshotError> for LyricError {
    fn from(e: lyric_store::snapshot::SnapshotError) -> Self {
        LyricError::SnapshotCorrupt(e.to_string())
    }
}

impl From<lyric_engine::BudgetExceeded> for LyricError {
    fn from(e: lyric_engine::BudgetExceeded) -> Self {
        LyricError::BudgetExceeded {
            resource: e.resource,
            limit: e.limit,
            consumed: e.consumed,
        }
    }
}

impl fmt::Display for LyricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LyricError::Lex(e) => write!(f, "lex error: {}", e.message),
            LyricError::Parse(e) => write!(f, "parse error: {}", e.message),
            LyricError::Analysis(ds) => {
                let errors = ds.len();
                write!(
                    f,
                    "query rejected by static analysis ({errors} diagnostic(s))"
                )?;
                if let Some(d) = ds.first() {
                    write!(f, ": [{}] {}", d.code, d.message)?;
                }
                Ok(())
            }
            LyricError::UnboundVariable(v) => write!(f, "variable {v} is not bound"),
            LyricError::UnknownAttribute {
                class,
                attr,
                searched,
            } => {
                write!(f, "class {class} has no attribute {attr}")?;
                if searched.len() > 1 {
                    write!(f, " (searched IS-A chain: {})", searched.join(" -> "))?;
                }
                Ok(())
            }
            LyricError::UnknownClass(c) => write!(f, "unknown class {c}"),
            LyricError::TypeError(m) => write!(f, "type error: {m}"),
            LyricError::DimensionMismatch {
                expected,
                got,
                what,
            } => {
                write!(f, "{what}: expected {expected} variables, got {got}")
            }
            LyricError::Unbounded => write!(f, "objective is unbounded"),
            LyricError::NotAttained => {
                write!(f, "optimum is a supremum not attained by any point")
            }
            LyricError::EmptyOptimization => {
                write!(f, "optimization over an empty constraint set")
            }
            LyricError::Db(e) => write!(f, "database error: {e}"),
            LyricError::Constraint(e) => write!(f, "constraint error: {e}"),
            LyricError::BudgetExceeded {
                resource,
                limit,
                consumed,
            } => write!(
                f,
                "evaluation budget exceeded: {resource} (consumed {consumed} of limit {limit})"
            ),
            LyricError::SnapshotCorrupt(m) => write!(f, "snapshot corrupt: {m}"),
        }
    }
}

impl std::error::Error for LyricError {}
