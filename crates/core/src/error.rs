//! Errors of the LyriC language layer.

use lyric_constraint::ConstraintError;
use lyric_oodb::DbError;
use std::fmt;

/// Any error raised while lexing, parsing, or evaluating a LyriC query.
#[derive(Debug, Clone, PartialEq)]
pub enum LyricError {
    /// Lexical error.
    Lex(String),
    /// Syntax error with the offending token and expectation.
    Parse(String),
    /// A variable was used before anything bound it (XSQL evaluates
    /// conjunctions left to right; see the evaluator docs).
    UnboundVariable(String),
    /// A path step used an attribute the class does not declare.
    UnknownAttribute { class: String, attr: String },
    /// FROM referenced a class missing from the schema.
    UnknownClass(String),
    /// A pseudo-linear formula used a path that did not evaluate to a
    /// numeric constant, or a CST predicate path that did not evaluate to a
    /// constraint object.
    TypeError(String),
    /// A CST predicate's explicit variable list does not match the
    /// dimension of the referenced object.
    DimensionMismatch { expected: usize, got: usize, what: String },
    /// `MAX`/`MIN` over an unbounded objective.
    Unbounded,
    /// `MAX_POINT`/`MIN_POINT` when the optimum is a supremum that no point
    /// attains (strict constraints).
    NotAttained,
    /// `MAX`/`MIN` over an empty constraint set.
    EmptyOptimization,
    /// Underlying database error (e.g. during view materialization).
    Db(DbError),
    /// Underlying constraint-engine error.
    Constraint(ConstraintError),
    /// The query crossed an [`EngineBudget`](lyric_engine::EngineBudget)
    /// limit and was aborted. `limit`/`consumed` are in the resource's
    /// native unit (counts, or milliseconds for the wall-clock deadline).
    BudgetExceeded { resource: lyric_engine::Resource, limit: u64, consumed: u64 },
}

impl LyricError {
    pub fn lex(msg: impl Into<String>) -> LyricError {
        LyricError::Lex(msg.into())
    }
    pub fn parse(msg: impl Into<String>) -> LyricError {
        LyricError::Parse(msg.into())
    }
    pub fn type_error(msg: impl Into<String>) -> LyricError {
        LyricError::TypeError(msg.into())
    }
}

impl From<DbError> for LyricError {
    fn from(e: DbError) -> Self {
        LyricError::Db(e)
    }
}

impl From<ConstraintError> for LyricError {
    fn from(e: ConstraintError) -> Self {
        LyricError::Constraint(e)
    }
}

impl From<lyric_engine::BudgetExceeded> for LyricError {
    fn from(e: lyric_engine::BudgetExceeded) -> Self {
        LyricError::BudgetExceeded {
            resource: e.resource,
            limit: e.limit,
            consumed: e.consumed,
        }
    }
}

impl fmt::Display for LyricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LyricError::Lex(m) => write!(f, "lex error: {m}"),
            LyricError::Parse(m) => write!(f, "parse error: {m}"),
            LyricError::UnboundVariable(v) => write!(f, "variable {v} is not bound"),
            LyricError::UnknownAttribute { class, attr } => {
                write!(f, "class {class} has no attribute {attr}")
            }
            LyricError::UnknownClass(c) => write!(f, "unknown class {c}"),
            LyricError::TypeError(m) => write!(f, "type error: {m}"),
            LyricError::DimensionMismatch { expected, got, what } => {
                write!(f, "{what}: expected {expected} variables, got {got}")
            }
            LyricError::Unbounded => write!(f, "objective is unbounded"),
            LyricError::NotAttained => {
                write!(f, "optimum is a supremum not attained by any point")
            }
            LyricError::EmptyOptimization => {
                write!(f, "optimization over an empty constraint set")
            }
            LyricError::Db(e) => write!(f, "database error: {e}"),
            LyricError::Constraint(e) => write!(f, "constraint error: {e}"),
            LyricError::BudgetExceeded { resource, limit, consumed } => write!(
                f,
                "evaluation budget exceeded: {resource} (consumed {consumed} of limit {limit})"
            ),
        }
    }
}

impl std::error::Error for LyricError {}
