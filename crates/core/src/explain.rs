//! EXPLAIN / EXPLAIN ANALYZE — the operator-level plan report.
//!
//! [`explain`] builds a static [`PlanNode`] tree for a query without
//! running it: one node per evaluator operator site (the SELECT root,
//! each FROM binding, the WHERE condition tree, each SELECT item),
//! annotated with the features that govern constraint-query cost —
//! class extent cardinalities, constraint atom counts, disjunction
//! alternatives, projection quantifiers — plus the rewrite rules the
//! FP-algebra optimizer (`lyric_algebra::optimize_explained`) applies to
//! the query's naive point-free form, reported on the root node.
//!
//! [`execute_explained`] additionally runs the query with the plan-node
//! ids threaded through the evaluator's span instrumentation
//! (`lyric_engine::span_node`) and per-node row counters, then attributes
//! the sealed trace back to the plan with
//! [`lyric_trace::plan::analyze`](lyric_engine::trace::plan::analyze).
//! Two invariants are pinned by `tests/explain_differential.rs`:
//!
//! * Σ per-node exclusive counters equals [`QueryResult::stats`]
//!   **exactly** (the attribution fold is total);
//! * Σ per-node exclusive time equals the trace's summed span self-time
//!   exactly, which equals the traced total up to the collector's
//!   saturating-subtraction tolerance on serial runs.
//!
//! Every analyzed run also feeds the process-lifetime cost-profile store
//! (`lyric_metrics::profile`), keyed by `(shape hash, node id)`; and when
//! `LYRIC_SLOW_EXPLAIN=1` arms slow-query forensics, the normal execution
//! paths route logged SELECTs through here so the slow-query log line can
//! carry the top-3-nodes summary ([`ExplainReport::summary_json`]).
//!
//! Node ids are assigned in preorder (`0` = the SELECT root) and are
//! stable for a given query text. The node map uses AST pointer identity:
//! the parsed query is pinned on the caller's stack for the duration of
//! the evaluation, so `&Cond` addresses identify condition sites.

use crate::ast::*;
use crate::error::LyricError;
use crate::eval::{check, column_name, eval_select_query_with, log_query, QueryResult};
use crate::formula::display_path;
use crate::parser::parse_query;
use lyric_engine::trace::plan::{self, PlanAnalysis, PlanNode};
use lyric_engine::trace::Json;
use lyric_oodb::Database;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The product of [`explain`] / [`execute_explained`]: the plan tree, the
/// runtime attribution (absent for plain EXPLAIN), and the shape hash
/// keying the cost-profile store.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// The operator tree with static annotations.
    pub plan: PlanNode,
    /// Per-node runtime observations; `None` for plain EXPLAIN.
    pub analysis: Option<PlanAnalysis>,
    /// FNV-1a hash of the plan shape (see [`PlanNode::shape_hash`]).
    pub shape_hash: u64,
}

impl ExplainReport {
    /// The indented text tree (the REPL's `:explain` output).
    pub fn render(&self) -> String {
        plan::render_plan(&self.plan, self.analysis.as_ref())
    }

    /// The machine-readable document (the `POST /query` `plan` member);
    /// schema pinned by `lyric_trace::plan::validate_plan_json`.
    pub fn to_json(&self) -> Json {
        plan::plan_to_json(&self.plan, self.analysis.as_ref())
    }

    /// Compact JSON array of the `k` hottest nodes by exclusive time —
    /// the summary the slow-query log attaches. `[]` without an analysis.
    pub fn summary_json(&self, k: usize) -> String {
        let Some(a) = &self.analysis else {
            return "[]".into();
        };
        let top = plan::top_self_nodes(&self.plan, a, k);
        Json::Arr(
            top.iter()
                .map(|(n, obs)| {
                    Json::obj([
                        ("node", Json::int(n.id as u64)),
                        ("op", Json::str(n.op)),
                        ("label", Json::str(n.label.clone())),
                        ("self_us", Json::int(obs.self_time.as_micros() as u64)),
                        ("rows_out", Json::int(obs.rows_out)),
                    ])
                })
                .collect(),
        )
        .to_string()
    }
}

/// EXPLAIN without execution: parse, analyze, and return the static plan
/// (with the algebra rewrite rules on the root node). For `CREATE VIEW`
/// the inner SELECT is explained.
pub fn explain(db: &Database, src: &str) -> Result<ExplainReport, LyricError> {
    let q = parse_query(src)?;
    check(db, &q)?;
    let s = match &q {
        Query::Select(s) => s,
        Query::CreateView(v) => &v.select,
    };
    let (plan, _info) = build_plan(db, s);
    Ok(ExplainReport {
        shape_hash: plan.shape_hash(),
        plan,
        analysis: None,
    })
}

/// EXPLAIN ANALYZE: execute a `SELECT` statement with plan-node
/// instrumentation and return the answer alongside the attributed plan.
/// The answer (columns, rows, semantic stats) is bit-identical to the
/// plain [`execute_shared`](crate::execute_shared) evaluation — the
/// instrumentation only observes. Runs under the default
/// [`ExecOptions`](lyric_engine::ExecOptions).
pub fn execute_explained(
    db: &Database,
    src: &str,
) -> Result<(QueryResult, ExplainReport), LyricError> {
    execute_explained_with_options(db, src, &lyric_engine::ExecOptions::default())
}

/// [`execute_explained`] with explicit
/// [`ExecOptions`](lyric_engine::ExecOptions). `CREATE VIEW` is rejected
/// (it mutates the database; use [`explain`] for its static plan).
pub fn execute_explained_with_options(
    db: &Database,
    src: &str,
    opts: &lyric_engine::ExecOptions,
) -> Result<(QueryResult, ExplainReport), LyricError> {
    let q = parse_query(src)?;
    check(db, &q)?;
    match &q {
        Query::Select(s) => run_explained_select(db, src, s, opts),
        Query::CreateView(_) => Err(LyricError::type_error(
            "EXPLAIN ANALYZE evaluates SELECT statements only; CREATE VIEW mutates the database",
        )),
    }
}

/// True when slow-query forensics should route plain executions through
/// the explained runner: a query-log sink is installed, a slow threshold
/// is configured, and `LYRIC_SLOW_EXPLAIN=1` armed the gate.
pub(crate) fn slow_explain_active() -> bool {
    lyric_metrics::enabled()
        && lyric_metrics::querylog::active()
        && lyric_metrics::querylog::slow_explain()
}

/// The explained runner: trace the evaluation with node-stamped spans,
/// attribute the trace to the plan, fill the evaluator's row counters in,
/// feed the cost-profile store, and write the query-log line (with the
/// top-nodes summary when slow-query forensics is armed). The caller has
/// already parsed and checked the query.
pub(crate) fn run_explained_select(
    db: &Database,
    src: &str,
    s: &SelectQuery,
    opts: &lyric_engine::ExecOptions,
) -> Result<(QueryResult, ExplainReport), LyricError> {
    let (plan, info) = build_plan(db, s);
    let shape_hash = plan.shape_hash();
    let started = Instant::now();
    let trace_id = Cell::new(0u64);
    let threads = opts.threads.max(1);
    let fguard = crate::eval::flight_begin(src, opts);
    let progress = fguard.as_ref().map(|g| g.progress());
    let outcome = lyric_engine::run_traced_opts_flight(
        opts.clone(),
        progress,
        src.trim().to_string(),
        src.len(),
        || {
            trace_id.set(lyric_engine::generation());
            if let Some(g) = &fguard {
                g.set_trace_id(lyric_engine::generation());
            }
            eval_select_query_with(db, s, Some(&info))
        },
    );
    let result = match outcome {
        Ok((inner, stats, trace)) => inner.map(|mut res| {
            res.stats = stats;
            (res, trace)
        }),
        Err(exceeded) => Err(exceeded.into()),
    };
    match result {
        Ok((res, trace)) => {
            let mut analysis = plan::analyze(&plan, &trace);
            for (id, obs) in analysis.nodes.iter_mut().enumerate() {
                let (rows_in, rows_out) = info.rows_of(id as u32);
                obs.rows_in = rows_in;
                obs.rows_out = rows_out;
            }
            for node in plan.by_id() {
                let obs = &analysis.nodes[node.id as usize];
                let counters = obs.stats.nonzero_counters();
                lyric_metrics::profile::record(
                    shape_hash,
                    node.id,
                    node.op,
                    &lyric_metrics::profile::Obs {
                        self_us: obs.self_time.as_secs_f64() * 1e6,
                        rows_in: obs.rows_in,
                        rows_out: obs.rows_out,
                        counters: &counters,
                    },
                );
            }
            let report = ExplainReport {
                plan,
                analysis: Some(analysis),
                shape_hash,
            };
            let summary = slow_explain_active().then(|| report.summary_json(3));
            log_query(
                src,
                threads,
                started,
                trace_id.get(),
                &Ok(res.clone()),
                summary.as_deref(),
            );
            crate::eval::flight_finish(
                fguard,
                src,
                threads,
                started,
                trace_id.get(),
                &Ok(res.clone()),
                summary.as_deref(),
            );
            Ok((res, report))
        }
        Err(e) => {
            log_query(src, threads, started, trace_id.get(), &Err(e.clone()), None);
            crate::eval::flight_finish(
                fguard,
                src,
                threads,
                started,
                trace_id.get(),
                &Err(e.clone()),
                None,
            );
            Err(e)
        }
    }
}

// ------------------------------------------------------------- plan build

/// The evaluator-side explain state: plan-node ids for every operator
/// site, and the per-node row counters the evaluator feeds. Shared across
/// worker threads (`parallel_map`), hence the atomics; row totals are
/// multiset-invariant over the work distribution, so they are
/// deterministic across thread counts.
pub(crate) struct ExplainInfo {
    /// Condition sites, keyed by `&Cond` address within the pinned query.
    cond_ids: BTreeMap<usize, u32>,
    /// Node ids of the FROM items, in clause order.
    from_ids: Vec<u32>,
    /// Node ids of the SELECT items, in clause order.
    item_ids: Vec<u32>,
    where_id: Option<u32>,
    /// `[rows_in, rows_out]` per node id.
    rows: Vec<[AtomicU64; 2]>,
}

impl ExplainInfo {
    pub(crate) fn cond_node(&self, c: &Cond) -> Option<u32> {
        self.cond_ids.get(&(c as *const Cond as usize)).copied()
    }

    pub(crate) fn binder_node(&self, i: usize) -> Option<u32> {
        self.from_ids.get(i).copied()
    }

    pub(crate) fn item_node(&self, i: usize) -> Option<u32> {
        self.item_ids.get(i).copied()
    }

    pub(crate) fn where_node(&self) -> Option<u32> {
        self.where_id
    }

    pub(crate) fn add_rows(&self, id: u32, rows_in: u64, rows_out: u64) {
        if let Some(cell) = self.rows.get(id as usize) {
            cell[0].fetch_add(rows_in, Ordering::Relaxed);
            cell[1].fetch_add(rows_out, Ordering::Relaxed);
        }
    }

    fn rows_of(&self, id: u32) -> (u64, u64) {
        match self.rows.get(id as usize) {
            Some(cell) => (
                cell[0].load(Ordering::Relaxed),
                cell[1].load(Ordering::Relaxed),
            ),
            None => (0, 0),
        }
    }
}

/// Build the plan tree (preorder ids, static annotations, root rewrite
/// rules) and the evaluator-side node map for one SELECT query.
pub(crate) fn build_plan(db: &Database, s: &SelectQuery) -> (PlanNode, ExplainInfo) {
    let mut info = ExplainInfo {
        cond_ids: BTreeMap::new(),
        from_ids: Vec::new(),
        item_ids: Vec::new(),
        where_id: None,
        rows: Vec::new(),
    };
    let mut next: u32 = 1;
    let mut root = PlanNode::new(0, "select", "");
    root.rules = lyric_algebra::optimize_explained(&query_func(s)).1;
    for f in &s.from {
        let mut n = PlanNode::new(next, "from_bind", format!("{} {}", f.class, f.var));
        info.from_ids.push(next);
        next += 1;
        n.source = f.class_span.join(f.var_span).byte_range();
        n.extent_size = Some(db.extent(&f.class).len() as u64);
        root.children.push(n);
    }
    if let Some(w) = &s.where_clause {
        let mut wn = PlanNode::new(next, "where", "");
        info.where_id = Some(next);
        next += 1;
        wn.source = w.span().byte_range();
        wn.children.push(build_cond(w, &mut next, &mut info));
        root.children.push(wn);
    }
    for (i, item) in s.items.iter().enumerate() {
        let op = match &item.value {
            SelectValue::Optimize { .. } => "optimize",
            _ => "select_item",
        };
        let mut n = PlanNode::new(next, op, column_name(i, item));
        info.item_ids.push(next);
        next += 1;
        n.source = item.span.byte_range();
        match &item.value {
            SelectValue::Formula(f) => formula_features(f, &mut n),
            SelectValue::Optimize { formula, .. } => formula_features(formula, &mut n),
            SelectValue::Path(_) => {}
        }
        root.children.push(n);
    }
    info.rows = (0..next)
        .map(|_| [AtomicU64::new(0), AtomicU64::new(0)])
        .collect();
    (root, info)
}

fn build_cond(c: &Cond, next: &mut u32, info: &mut ExplainInfo) -> PlanNode {
    let id = *next;
    *next += 1;
    info.cond_ids.insert(c as *const Cond as usize, id);
    let (op, label) = match c {
        Cond::And(..) => ("and", String::new()),
        Cond::Or(..) => ("or", String::new()),
        Cond::Not(..) => ("not", String::new()),
        Cond::PathPred(p) => ("path_pred", display_path(p)),
        Cond::Compare { op, .. } => ("compare", cmp_symbol(*op).to_string()),
        Cond::Sat(..) => ("sat", String::new()),
        Cond::Entails(..) => ("entails", String::new()),
    };
    let mut n = PlanNode::new(id, op, label);
    n.source = c.span().byte_range();
    match c {
        Cond::And(a, b) | Cond::Or(a, b) => {
            n.children.push(build_cond(a, next, info));
            n.children.push(build_cond(b, next, info));
        }
        Cond::Not(a) => n.children.push(build_cond(a, next, info)),
        Cond::Sat(f) => formula_features(f, &mut n),
        Cond::Entails(f1, f2) => {
            formula_features(f1, &mut n);
            formula_features(f2, &mut n);
        }
        Cond::PathPred(..) | Cond::Compare { .. } => {}
    }
    n
}

fn cmp_symbol(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Neq => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Contains => "CONTAINS",
    }
}

/// Accumulate the static cost features of a CST formula onto a plan node:
/// chained atoms and object references (`atoms`), OR alternatives
/// (`disjuncts`), projection variables (`quantifiers`).
fn formula_features(f: &Formula, n: &mut PlanNode) {
    match f {
        Formula::And(a, b) => {
            formula_features(a, n);
            formula_features(b, n);
        }
        Formula::Or(a, b) => {
            n.disjuncts += 1;
            formula_features(a, n);
            formula_features(b, n);
        }
        Formula::Not(a) => formula_features(a, n),
        Formula::Proj { vars, body, .. } => {
            n.quantifiers += vars.len() as u32;
            formula_features(body, n);
        }
        Formula::Pred { .. } => n.atoms += 1,
        Formula::Chain { rest, .. } => n.atoms += rest.len() as u32,
    }
}

/// The query's naive FP-algebra form (§5): SELECT-item maps over filters
/// over canonicalized candidates over the FROM extents, outermost first.
/// This is the program `optimize_explained` rewrites to annotate the root
/// plan node with the rules that fire (e.g. `hoist_filter_sat` commutes
/// the satisfiability filter ahead of the per-element canonicalization
/// map; `fuse_filter` merges conjunct filters).
fn query_func(s: &SelectQuery) -> lyric_algebra::Func {
    use lyric_algebra::Func;
    let mut stages: Vec<Func> = Vec::new();
    for item in &s.items {
        match &item.value {
            SelectValue::Formula(_) => {
                stages.push(Func::ApplyToAll(Box::new(Func::Canonicalize)));
            }
            SelectValue::Optimize { .. } => {
                stages.push(Func::ApplyToAll(Box::new(Func::Maximize(
                    lyric_constraint::LinExpr::from(0i64),
                ))));
            }
            SelectValue::Path(_) => {}
        }
    }
    if let Some(w) = &s.where_clause {
        cond_filters(w, &mut stages);
    }
    stages.push(Func::ApplyToAll(Box::new(Func::Canonicalize)));
    for f in &s.from {
        stages.push(Func::Extent(f.class.clone()));
    }
    Func::Compose(stages)
}

/// One filter stage per top-level WHERE conjunct: constraint predicates
/// become satisfiability filters (the form the optimizer hoists);
/// everything else is an opaque predicate.
fn cond_filters(c: &Cond, stages: &mut Vec<lyric_algebra::Func>) {
    use lyric_algebra::Func;
    match c {
        Cond::And(a, b) => {
            cond_filters(a, stages);
            cond_filters(b, stages);
        }
        Cond::Sat(..) | Cond::Entails(..) => {
            stages.push(Func::Filter(Box::new(Func::Satisfiable)));
        }
        _ => stages.push(Func::Filter(Box::new(Func::Id))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    const Q: &str = "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
         FROM Office_Object CO
         WHERE CO.extent[E] AND CO.translation[D]";

    #[test]
    fn explain_builds_a_dense_annotated_plan() {
        let db = paper_example::database();
        let report = explain(&db, Q).unwrap();
        let nodes = report.plan.by_id(); // panics unless ids are dense preorder
        assert_eq!(nodes[0].op, "select");
        let from = nodes.iter().find(|n| n.op == "from_bind").unwrap();
        assert_eq!(from.label, "Office_Object CO");
        assert!(from.extent_size.unwrap() > 0);
        assert!(nodes.iter().any(|n| n.op == "where"));
        assert!(nodes.iter().any(|n| n.op == "path_pred"));
        // The formula item carries atom/quantifier annotations.
        let item = nodes
            .iter()
            .find(|n| n.op == "select_item" && n.atoms > 0)
            .unwrap();
        assert_eq!(item.quantifiers, 2, "((u,v) | …) projects two variables");
        // The naive FP form of this query admits rewrites.
        assert!(
            !report.plan.rules.is_empty(),
            "rules: {:?}",
            report.plan.rules
        );
        assert!(report.analysis.is_none());
        // Text + JSON renderers agree with the validator.
        let json = report.to_json().to_string();
        let n = lyric_engine::trace::plan::validate_plan_json(&json).unwrap();
        assert_eq!(n, report.plan.node_count());
    }

    #[test]
    fn analyze_attributes_everything_and_preserves_the_answer() {
        let mut db = paper_example::database();
        let plain = crate::execute(&mut db, Q).unwrap();
        let (res, report) = execute_explained(&db, Q).unwrap();
        assert_eq!(res.columns, plain.columns);
        assert_eq!(res.rows, plain.rows);
        assert_eq!(res.stats.semantic(), plain.stats.semantic());
        let a = report.analysis.as_ref().unwrap();
        // The two pinned invariants.
        assert_eq!(a.summed_stats(), res.stats);
        assert_eq!(a.summed_self_time(), a.total_self);
        // Root rows_out is the answer cardinality.
        assert_eq!(a.nodes[0].rows_out, res.rows.len() as u64);
        // The analyzed JSON document validates.
        let json = report.to_json().to_string();
        lyric_engine::trace::plan::validate_plan_json(&json).unwrap();
        // The slow-log summary is a JSON array of at most 3 nodes.
        let summary = report.summary_json(3);
        assert!(summary.starts_with('['), "{summary}");
        assert!(summary.contains("\"self_us\""), "{summary}");
    }

    #[test]
    fn explain_analyze_rejects_create_view() {
        let db = paper_example::database();
        let err = execute_explained(
            &db,
            "CREATE VIEW V AS SUBCLASS OF Thing SELECT D FROM Desk D",
        );
        assert!(err.is_err());
    }

    #[test]
    fn shape_hash_is_stable_for_a_query_text() {
        let db = paper_example::database();
        let a = explain(&db, Q).unwrap();
        let b = explain(&db, Q).unwrap();
        assert_eq!(a.shape_hash, b.shape_hash);
        let c = explain(&db, "SELECT D FROM Desk D").unwrap();
        assert_ne!(a.shape_hash, c.shape_hash);
    }
}
