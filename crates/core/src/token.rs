//! Tokens of the LyriC surface syntax.

use lyric_arith::Rational;
use std::fmt;

/// Keywords are case-insensitive (`SELECT`, `select`, `Select` all lex to
/// [`Token::Select`]), matching the paper's SQL heritage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    // Literals and identifiers
    Ident(String),
    Number(Rational),
    Str(String),

    // Keywords
    Select,
    From,
    Where,
    And,
    Or,
    Not,
    Create,
    View,
    As,
    Subclass,
    Of,
    Signature,
    OidKw,
    Function,
    Max,
    Min,
    MaxPoint,
    MinPoint,
    Subject,
    To,
    Contains,
    True,
    False,

    // Punctuation and operators
    LParen,
    RParen,
    LBracket,
    RBracket,
    Dot,
    Comma,
    Bar,     // |
    Entails, // |=
    Eq,      // =
    Neq,     // != or <>
    Le,      // <=
    Lt,      // <
    Ge,      // >=
    Gt,      // >
    Plus,
    Minus,
    Star,
    ArrowScalar, // =>
    ArrowSet,    // =>>

    Eof,
}

impl Token {
    /// Keyword lookup (case-insensitive).
    pub fn keyword(word: &str) -> Option<Token> {
        Some(match word.to_ascii_uppercase().as_str() {
            "SELECT" => Token::Select,
            "FROM" => Token::From,
            "WHERE" => Token::Where,
            "AND" => Token::And,
            "OR" => Token::Or,
            "NOT" => Token::Not,
            "CREATE" => Token::Create,
            "VIEW" => Token::View,
            "AS" => Token::As,
            "SUBCLASS" => Token::Subclass,
            "OF" => Token::Of,
            "SIGNATURE" => Token::Signature,
            "OID" => Token::OidKw,
            "FUNCTION" => Token::Function,
            "MAX" => Token::Max,
            "MIN" => Token::Min,
            "MAX_POINT" => Token::MaxPoint,
            "MIN_POINT" => Token::MinPoint,
            "SUBJECT" => Token::Subject,
            "TO" => Token::To,
            "CONTAINS" => Token::Contains,
            "TRUE" => Token::True,
            "FALSE" => Token::False,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Select => write!(f, "SELECT"),
            Token::From => write!(f, "FROM"),
            Token::Where => write!(f, "WHERE"),
            Token::And => write!(f, "AND"),
            Token::Or => write!(f, "OR"),
            Token::Not => write!(f, "NOT"),
            Token::Create => write!(f, "CREATE"),
            Token::View => write!(f, "VIEW"),
            Token::As => write!(f, "AS"),
            Token::Subclass => write!(f, "SUBCLASS"),
            Token::Of => write!(f, "OF"),
            Token::Signature => write!(f, "SIGNATURE"),
            Token::OidKw => write!(f, "OID"),
            Token::Function => write!(f, "FUNCTION"),
            Token::Max => write!(f, "MAX"),
            Token::Min => write!(f, "MIN"),
            Token::MaxPoint => write!(f, "MAX_POINT"),
            Token::MinPoint => write!(f, "MIN_POINT"),
            Token::Subject => write!(f, "SUBJECT"),
            Token::To => write!(f, "TO"),
            Token::Contains => write!(f, "CONTAINS"),
            Token::True => write!(f, "TRUE"),
            Token::False => write!(f, "FALSE"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Dot => write!(f, "."),
            Token::Comma => write!(f, ","),
            Token::Bar => write!(f, "|"),
            Token::Entails => write!(f, "|="),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "!="),
            Token::Le => write!(f, "<="),
            Token::Lt => write!(f, "<"),
            Token::Ge => write!(f, ">="),
            Token::Gt => write!(f, ">"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::ArrowScalar => write!(f, "=>"),
            Token::ArrowSet => write!(f, "=>>"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}
