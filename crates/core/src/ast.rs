//! Abstract syntax of LyriC queries (§4.2).

use crate::span::Span;
use lyric_arith::Rational;

/// A complete LyriC statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    Select(SelectQuery),
    CreateView(ViewQuery),
}

/// `CREATE VIEW name AS SUBCLASS OF parent <select>`. When `name` is a
/// variable declared in the SELECT's FROM clause, one view class is created
/// per binding of that variable (the paper's Region classification
/// example).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewQuery {
    pub name: String,
    /// Span of the view name in the source.
    pub name_span: Span,
    pub parent: String,
    /// Span of the parent-class name in the source.
    pub parent_span: Span,
    pub select: SelectQuery,
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    pub items: Vec<SelectItem>,
    /// `SIGNATURE attr => Class` / `attr =>> Class` declarations for view
    /// output objects.
    pub signature: Vec<SigItem>,
    /// `FROM Class Var` pairs.
    pub from: Vec<FromItem>,
    /// `OID FUNCTION OF X,Y`: output objects get id-function oids over the
    /// listed variables.
    pub oid_function: Option<Vec<String>>,
    /// Spans parallel to `oid_function`'s variables (empty when absent).
    pub oid_function_spans: Vec<Span>,
    pub where_clause: Option<Cond>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    pub class: String,
    /// Span of the class name in the source.
    pub class_span: Span,
    pub var: String,
    /// Span of the variable name in the source.
    pub var_span: Span,
}

impl FromItem {
    /// A FROM item with dummy spans (for programmatic construction).
    pub fn new(class: impl Into<String>, var: impl Into<String>) -> FromItem {
        FromItem {
            class: class.into(),
            class_span: Span::DUMMY,
            var: var.into(),
            var_span: Span::DUMMY,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct SigItem {
    pub attr: String,
    pub is_set: bool,
    pub class: String,
    /// Span of the target class name in the source.
    pub class_span: Span,
}

/// One SELECT output column, optionally labelled (`name = X.name`).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub label: Option<String>,
    pub value: SelectValue,
    /// Span of the whole item in the source.
    pub span: Span,
}

/// What a SELECT column computes.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectValue {
    /// A path expression (its tail oid).
    Path(PathExpr),
    /// A CST formula creating a new constraint object — §4.2 item 1.
    Formula(Formula),
    /// `MAX/MIN/MAX_POINT/MIN_POINT (objective SUBJECT TO formula)` —
    /// §4.2 items 2 and 3.
    Optimize {
        kind: OptKind,
        objective: Arith,
        formula: Formula,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptKind {
    Max,
    Min,
    MaxPoint,
    MinPoint,
}

// ---------------------------------------------------------------- paths

/// An XSQL extended path expression:
/// `selector0.Attr1[sel1].Attr2[sel2]…` (§2.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathExpr {
    pub root: Selector,
    pub steps: Vec<Step>,
    /// Span of the whole path in the source.
    pub span: Span,
}

impl PathExpr {
    /// A bare variable path.
    pub fn var(name: impl Into<String>) -> PathExpr {
        PathExpr {
            root: Selector::Var(name.into()),
            steps: Vec::new(),
            span: Span::DUMMY,
        }
    }

    /// All variables occurring in selector positions.
    pub fn selector_vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        if let Selector::Var(v) = &self.root {
            out.push(v.as_str());
        }
        for s in &self.steps {
            if let Some(Selector::Var(v)) = &s.selector {
                out.push(v.as_str());
            }
        }
        out
    }
}

/// A selector: a variable or a ground oid literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Selector {
    Var(String),
    Lit(OidLit),
}

/// Ground oid literals appearing in queries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OidLit {
    Named(String),
    Int(i64),
    Str(String),
    Bool(bool),
}

/// One path step: an attribute (name or attribute variable) with an
/// optional selector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Step {
    pub attr: String,
    pub selector: Option<Selector>,
    /// Span of this step (attribute plus selector) in the source.
    pub span: Span,
}

// ------------------------------------------------------------ conditions

/// WHERE-clause conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
    Not(Box<Cond>),
    /// A path expression used as a Boolean predicate: true iff some
    /// database path satisfies a ground instance (§2.2). Binds its
    /// selector variables.
    PathPred(PathExpr),
    /// Comparison of path-expression values / literals.
    Compare {
        lhs: CmpOperand,
        op: CmpOp,
        rhs: CmpOperand,
    },
    /// Satisfiability predicate: a parenthesized CST formula (§4.2 item 1
    /// of WHERE predicates).
    Sat(Formula),
    /// Entailment predicate `φ |= ψ` (§4.2 item 2).
    Entails(Formula, Formula),
}

#[derive(Debug, Clone, PartialEq)]
pub enum CmpOperand {
    Path(PathExpr),
    Num(Rational),
    Str(String),
    Bool(bool),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    /// Set containment of path-expression values.
    Contains,
}

// -------------------------------------------------------------- formulas

/// CST formulas (§4.2): the syntactic families of §3.1 extended with
/// pseudo-linear atoms and CST-object references.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    And(Box<Formula>, Box<Formula>),
    Or(Box<Formula>, Box<Formula>),
    Not(Box<Formula>),
    /// Projection `((x₁,…,xₙ) | φ)`.
    Proj {
        vars: Vec<String>,
        body: Box<Formula>,
        span: Span,
    },
    /// A CST-object reference `O(x₁,…,xₙ)` or bare `O`, where `O` is a path
    /// expression. With `vars: None` the variable names are "simply copied
    /// from the schema" (§4.2).
    Pred {
        path: PathExpr,
        vars: Option<Vec<String>>,
    },
    /// A chained pseudo-linear constraint `a₁ op₁ a₂ op₂ … aₖ`
    /// (e.g. `-4 <= w <= 4`), denoting the conjunction of adjacent pairs.
    Chain {
        first: Arith,
        rest: Vec<(CRelOp, Arith)>,
        span: Span,
    },
}

impl Formula {
    /// Best-effort source span of this formula: the join of the spans of
    /// its parsed leaves (dummy for fully synthesized formulas).
    pub fn span(&self) -> Span {
        match self {
            Formula::And(a, b) | Formula::Or(a, b) => a.span().join(b.span()),
            Formula::Not(a) => a.span(),
            Formula::Proj { span, body, .. } => span.join(body.span()),
            Formula::Pred { path, .. } => path.span,
            Formula::Chain { span, first, rest } => rest
                .iter()
                .fold(span.join(first.span()), |acc, (_, a)| acc.join(a.span())),
        }
    }
}

/// Relational operators in constraint atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CRelOp {
    Eq,
    Neq,
    Le,
    Lt,
    Ge,
    Gt,
}

/// Pseudo-linear arithmetic: constants, constraint variables, and path
/// expressions that must evaluate to numeric constants (§4.2).
#[derive(Debug, Clone, PartialEq)]
pub enum Arith {
    Num(Rational),
    /// A bare identifier: a constraint variable, unless the evaluator
    /// resolves it to a FROM-bound object (then it must be numeric).
    Var(String),
    /// A multi-step path used as a numeric constant.
    PathConst(PathExpr),
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
    Neg(Box<Arith>),
}

impl Arith {
    /// Best-effort source span: paths carry spans; bare variables and
    /// literals do not, so this may be dummy.
    pub fn span(&self) -> Span {
        match self {
            Arith::Num(_) | Arith::Var(_) => Span::DUMMY,
            Arith::PathConst(p) => p.span,
            Arith::Add(a, b) | Arith::Sub(a, b) | Arith::Mul(a, b) => a.span().join(b.span()),
            Arith::Neg(a) => a.span(),
        }
    }
}

impl Cond {
    /// Best-effort source span of this condition.
    pub fn span(&self) -> Span {
        match self {
            Cond::And(a, b) | Cond::Or(a, b) => a.span().join(b.span()),
            Cond::Not(a) => a.span(),
            Cond::PathPred(p) => p.span,
            Cond::Compare { lhs, rhs, .. } => lhs.span().join(rhs.span()),
            Cond::Sat(f) => f.span(),
            Cond::Entails(a, b) => a.span().join(b.span()),
        }
    }
}

impl CmpOperand {
    /// Source span (dummy for literals, which carry no position).
    pub fn span(&self) -> Span {
        match self {
            CmpOperand::Path(p) => p.span,
            _ => Span::DUMMY,
        }
    }
}
