//! Recursive-descent parser for LyriC (§4.2 syntax, a superset of XSQL).
//!
//! The grammar is parsed with bounded backtracking in two places where the
//! paper's notation overloads parentheses:
//!
//! * a parenthesized group in a WHERE clause is first tried as a CST
//!   predicate (`(φ)` satisfiability or `(φ |= ψ)` entailment — the
//!   paper's own convention is to parenthesize CST predicates) and falls
//!   back to a grouped Boolean condition;
//! * inside formulas, `((x,y) | φ)` (projection) vs `(φ)` (grouping) vs
//!   `(x + 1) * 2 <= y` (parenthesized arithmetic) are tried in that order.

use crate::ast::*;
use crate::error::LyricError;
use crate::lexer::lex_spanned;
use crate::span::Span;
use crate::token::Token;

/// Parse a complete LyriC statement.
pub fn parse_query(src: &str) -> Result<Query, LyricError> {
    let source = Some((0, src.len()));
    let (toks, spans) = {
        let _span = lyric_engine::span(lyric_engine::SpanKind::Lex, String::new, source);
        lex_spanned(src)?
    };
    let _span = lyric_engine::span(lyric_engine::SpanKind::Parse, String::new, source);
    let mut p = Parser {
        toks,
        spans,
        pos: 0,
    };
    let q = p.query()?;
    p.expect(Token::Eof)?;
    Ok(q)
}

/// Parse a standalone CST formula (used by tests and the library API).
pub fn parse_formula(src: &str) -> Result<Formula, LyricError> {
    let (toks, spans) = lex_spanned(src)?;
    let mut p = Parser {
        toks,
        spans,
        pos: 0,
    };
    let f = p.formula()?;
    p.expect(Token::Eof)?;
    Ok(f)
}

struct Parser {
    toks: Vec<Token>,
    /// Byte spans parallel to `toks`.
    spans: Vec<Span>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    /// Span of the token about to be consumed.
    fn cur_span(&self) -> Span {
        self.spans[self.pos]
    }

    /// Span covering everything consumed since token position `start`.
    fn span_from(&self, start: usize) -> Span {
        let last = self
            .pos
            .saturating_sub(1)
            .max(start)
            .min(self.spans.len() - 1);
        self.spans[start].join(self.spans[last])
    }

    fn peek2(&self) -> &Token {
        self.toks.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), LyricError> {
        if self.peek() == &t {
            self.bump();
            Ok(())
        } else {
            Err(LyricError::parse_at(
                format!("expected {t}, found {}", self.peek()),
                self.cur_span(),
                vec![t.to_string()],
                self.peek().to_string(),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, LyricError> {
        self.ident_sp().map(|(s, _)| s)
    }

    /// An identifier together with its span.
    fn ident_sp(&mut self) -> Result<(String, Span), LyricError> {
        let sp = self.cur_span();
        match self.bump() {
            Token::Ident(s) => Ok((s, sp)),
            other => Err(LyricError::parse_at(
                format!("expected identifier, found {other}"),
                sp,
                vec!["identifier".into()],
                other.to_string(),
            )),
        }
    }

    // ------------------------------------------------------------ queries

    fn query(&mut self) -> Result<Query, LyricError> {
        if self.eat(&Token::Create) {
            self.expect(Token::View)?;
            let (name, name_span) = self.ident_sp()?;
            self.expect(Token::As)?;
            self.expect(Token::Subclass)?;
            self.expect(Token::Of)?;
            let (parent, parent_span) = self.ident_sp()?;
            let select = self.select_query()?;
            Ok(Query::CreateView(ViewQuery {
                name,
                name_span,
                parent,
                parent_span,
                select,
            }))
        } else {
            Ok(Query::Select(self.select_query()?))
        }
    }

    fn select_query(&mut self) -> Result<SelectQuery, LyricError> {
        self.expect(Token::Select)?;
        let mut items = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            items.push(self.select_item()?);
        }
        let mut signature = Vec::new();
        if self.eat(&Token::Signature) {
            signature.push(self.sig_item()?);
            while self.eat(&Token::Comma) {
                signature.push(self.sig_item()?);
            }
        }
        self.expect(Token::From)?;
        let mut from = vec![self.from_item()?];
        while self.eat(&Token::Comma) {
            from.push(self.from_item()?);
        }
        let mut oid_function = None;
        let mut oid_function_spans = Vec::new();
        if self.peek() == &Token::OidKw {
            self.bump();
            self.expect(Token::Function)?;
            self.expect(Token::Of)?;
            let (v0, s0) = self.ident_sp()?;
            let mut vars = vec![v0];
            oid_function_spans.push(s0);
            while self.eat(&Token::Comma) {
                let (v, sp) = self.ident_sp()?;
                vars.push(v);
                oid_function_spans.push(sp);
            }
            oid_function = Some(vars);
        }
        let where_clause = if self.eat(&Token::Where) {
            Some(self.cond()?)
        } else {
            None
        };
        Ok(SelectQuery {
            items,
            signature,
            from,
            oid_function,
            oid_function_spans,
            where_clause,
        })
    }

    fn sig_item(&mut self) -> Result<SigItem, LyricError> {
        let attr = self.ident()?;
        let is_set = match self.bump() {
            Token::ArrowScalar => false,
            Token::ArrowSet => true,
            other => {
                return Err(LyricError::parse(format!(
                    "expected => or =>> in SIGNATURE, found {other}"
                )))
            }
        };
        let (class, class_span) = self.ident_sp()?;
        Ok(SigItem {
            attr,
            is_set,
            class,
            class_span,
        })
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_item(&mut self) -> Result<FromItem, LyricError> {
        let (class, class_span) = self.ident_sp()?;
        let (var, var_span) = self.ident_sp()?;
        Ok(FromItem {
            class,
            class_span,
            var,
            var_span,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, LyricError> {
        let start = self.pos;
        // `label = value` when an identifier is directly followed by `=`
        // and the value is not itself a comparison (select items never
        // are).
        let label = if matches!(self.peek(), Token::Ident(_)) && self.peek2() == &Token::Eq {
            let l = self.ident()?;
            self.bump(); // '='
            Some(l)
        } else {
            None
        };
        let value = self.select_value()?;
        Ok(SelectItem {
            label,
            value,
            span: self.span_from(start),
        })
    }

    fn select_value(&mut self) -> Result<SelectValue, LyricError> {
        match self.peek() {
            Token::Max | Token::Min | Token::MaxPoint | Token::MinPoint => {
                let kind = match self.bump() {
                    Token::Max => OptKind::Max,
                    Token::Min => OptKind::Min,
                    Token::MaxPoint => OptKind::MaxPoint,
                    Token::MinPoint => OptKind::MinPoint,
                    _ => unreachable!(),
                };
                self.expect(Token::LParen)?;
                let objective = self.arith()?;
                self.expect(Token::Subject)?;
                self.expect(Token::To)?;
                let formula = self.formula()?;
                self.expect(Token::RParen)?;
                Ok(SelectValue::Optimize {
                    kind,
                    objective,
                    formula,
                })
            }
            Token::LParen => Ok(SelectValue::Formula(self.formula()?)),
            _ => Ok(SelectValue::Path(self.path_expr()?)),
        }
    }

    // --------------------------------------------------------- conditions

    fn cond(&mut self) -> Result<Cond, LyricError> {
        let mut lhs = self.cond_and()?;
        while self.eat(&Token::Or) {
            let rhs = self.cond_and()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cond_and(&mut self) -> Result<Cond, LyricError> {
        let mut lhs = self.cond_unary()?;
        while self.eat(&Token::And) {
            let rhs = self.cond_unary()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cond_unary(&mut self) -> Result<Cond, LyricError> {
        if self.eat(&Token::Not) {
            Ok(Cond::Not(Box::new(self.cond_unary()?)))
        } else {
            self.cond_primary()
        }
    }

    fn cond_primary(&mut self) -> Result<Cond, LyricError> {
        if self.peek() == &Token::LParen {
            // Try CST predicate first (the paper parenthesizes these),
            // falling back to a grouped Boolean condition.
            let save = self.pos;
            self.bump(); // '('
            if let Ok(f1) = self.formula() {
                if self.eat(&Token::Entails) {
                    if let Ok(f2) = self.formula() {
                        if self.eat(&Token::RParen) {
                            return Ok(Cond::Entails(f1, f2));
                        }
                    }
                } else if self.eat(&Token::RParen) {
                    return Ok(Cond::Sat(f1));
                }
            }
            self.pos = save;
            self.bump(); // '('
            let inner = self.cond()?;
            self.expect(Token::RParen)?;
            return Ok(inner);
        }
        // Comparison or path predicate.
        let lhs = self.cmp_operand()?;
        let op = match self.peek() {
            Token::Eq => Some(CmpOp::Eq),
            Token::Neq => Some(CmpOp::Neq),
            Token::Lt => Some(CmpOp::Lt),
            Token::Le => Some(CmpOp::Le),
            Token::Gt => Some(CmpOp::Gt),
            Token::Ge => Some(CmpOp::Ge),
            Token::Contains => Some(CmpOp::Contains),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let rhs = self.cmp_operand()?;
                Ok(Cond::Compare { lhs, op, rhs })
            }
            None => match lhs {
                CmpOperand::Path(p) => Ok(Cond::PathPred(p)),
                _ => Err(LyricError::parse(format!(
                    "literal is not a predicate (found {})",
                    self.peek()
                ))),
            },
        }
    }

    fn cmp_operand(&mut self) -> Result<CmpOperand, LyricError> {
        match self.peek().clone() {
            Token::Number(n) => {
                self.bump();
                Ok(CmpOperand::Num(n))
            }
            Token::Minus => {
                self.bump();
                match self.bump() {
                    Token::Number(n) => Ok(CmpOperand::Num(-n)),
                    other => Err(LyricError::parse(format!(
                        "expected number after '-', found {other}"
                    ))),
                }
            }
            Token::Str(s) => {
                self.bump();
                Ok(CmpOperand::Str(s))
            }
            Token::True => {
                self.bump();
                Ok(CmpOperand::Bool(true))
            }
            Token::False => {
                self.bump();
                Ok(CmpOperand::Bool(false))
            }
            _ => Ok(CmpOperand::Path(self.path_expr()?)),
        }
    }

    // ----------------------------------------------------------- formulas

    pub(crate) fn formula(&mut self) -> Result<Formula, LyricError> {
        let mut lhs = self.formula_and()?;
        while self.eat(&Token::Or) {
            let rhs = self.formula_and()?;
            lhs = Formula::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn formula_and(&mut self) -> Result<Formula, LyricError> {
        let mut lhs = self.formula_unary()?;
        while self.eat(&Token::And) {
            let rhs = self.formula_unary()?;
            lhs = Formula::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn formula_unary(&mut self) -> Result<Formula, LyricError> {
        if self.eat(&Token::Not) {
            Ok(Formula::Not(Box::new(self.formula_unary()?)))
        } else {
            self.formula_primary()
        }
    }

    fn formula_primary(&mut self) -> Result<Formula, LyricError> {
        if self.peek() == &Token::LParen {
            // Projection `((x,y) | φ)`?
            let save = self.pos;
            if let Some(f) = self.try_projection()? {
                return Ok(f);
            }
            self.pos = save;
            // Grouped formula `(φ)`?
            self.bump(); // '('
            if let Ok(inner) = self.formula() {
                if self.eat(&Token::RParen) {
                    // Guard: `(x + 1) <= y` would have parsed `x + 1` as a
                    // 0-relop chain and failed; a successful parse here is
                    // a real formula. But `(x) <= y` parses as grouped
                    // chain... only if a relop follows, it was arithmetic
                    // grouping after all.
                    if !self.peek_is_relop() && !self.peek_is_arith_op() {
                        return Ok(inner);
                    }
                }
            }
            self.pos = save;
            // Parenthesized arithmetic leading a chain.
            return self.chain();
        }
        // Either a chained constraint or a CST predicate reference.
        let save = self.pos;
        match self.chain() {
            Ok(f) => Ok(f),
            Err(_) => {
                self.pos = save;
                self.pred()
            }
        }
    }

    fn peek_is_relop(&self) -> bool {
        matches!(
            self.peek(),
            Token::Eq | Token::Neq | Token::Le | Token::Lt | Token::Ge | Token::Gt
        )
    }

    fn peek_is_arith_op(&self) -> bool {
        matches!(self.peek(), Token::Plus | Token::Minus | Token::Star)
    }

    fn try_projection(&mut self) -> Result<Option<Formula>, LyricError> {
        if self.peek() != &Token::LParen || self.peek2() != &Token::LParen {
            return Ok(None);
        }
        let save = self.pos;
        self.bump(); // outer '('
        self.bump(); // inner '('
        let mut vars = Vec::new();
        loop {
            match self.bump() {
                Token::Ident(v) => vars.push(v),
                _ => {
                    self.pos = save;
                    return Ok(None);
                }
            }
            match self.bump() {
                Token::Comma => continue,
                Token::RParen => break,
                _ => {
                    self.pos = save;
                    return Ok(None);
                }
            }
        }
        if !self.eat(&Token::Bar) {
            self.pos = save;
            return Ok(None);
        }
        let body = self.formula()?;
        self.expect(Token::RParen)?;
        Ok(Some(Formula::Proj {
            vars,
            body: Box::new(body),
            span: self.span_from(save),
        }))
    }

    /// A chained pseudo-linear constraint: `arith (relop arith)+`.
    fn chain(&mut self) -> Result<Formula, LyricError> {
        let start = self.pos;
        let first = self.arith()?;
        let mut rest = Vec::new();
        while let Some(op) = self.crelop() {
            let a = self.arith()?;
            rest.push((op, a));
        }
        if rest.is_empty() {
            return Err(LyricError::parse_at(
                format!("expected relational operator, found {}", self.peek()),
                self.cur_span(),
                ["=", "!=", "<=", "<", ">=", ">"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                self.peek().to_string(),
            ));
        }
        Ok(Formula::Chain {
            first,
            rest,
            span: self.span_from(start),
        })
    }

    fn crelop(&mut self) -> Option<CRelOp> {
        let op = match self.peek() {
            Token::Eq => CRelOp::Eq,
            Token::Neq => CRelOp::Neq,
            Token::Le => CRelOp::Le,
            Token::Lt => CRelOp::Lt,
            Token::Ge => CRelOp::Ge,
            Token::Gt => CRelOp::Gt,
            _ => return None,
        };
        self.bump();
        Some(op)
    }

    /// A CST-object reference: `path` or `path(x1,…,xn)`.
    fn pred(&mut self) -> Result<Formula, LyricError> {
        let path = self.path_expr()?;
        let vars = if self.peek() == &Token::LParen {
            self.bump();
            let mut vs = vec![self.ident()?];
            while self.eat(&Token::Comma) {
                vs.push(self.ident()?);
            }
            self.expect(Token::RParen)?;
            Some(vs)
        } else {
            None
        };
        Ok(Formula::Pred { path, vars })
    }

    // --------------------------------------------------------- arithmetic

    pub(crate) fn arith(&mut self) -> Result<Arith, LyricError> {
        let mut lhs = self.arith_mul()?;
        loop {
            if self.eat(&Token::Plus) {
                let rhs = self.arith_mul()?;
                lhs = Arith::Add(Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Token::Minus) {
                let rhs = self.arith_mul()?;
                lhs = Arith::Sub(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn arith_mul(&mut self) -> Result<Arith, LyricError> {
        let mut lhs = self.arith_unary()?;
        while self.eat(&Token::Star) {
            let rhs = self.arith_unary()?;
            lhs = Arith::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn arith_unary(&mut self) -> Result<Arith, LyricError> {
        if self.eat(&Token::Minus) {
            Ok(Arith::Neg(Box::new(self.arith_unary()?)))
        } else {
            self.arith_factor()
        }
    }

    fn arith_factor(&mut self) -> Result<Arith, LyricError> {
        match self.peek().clone() {
            Token::Number(n) => {
                self.bump();
                Ok(Arith::Num(n))
            }
            Token::LParen => {
                self.bump();
                let inner = self.arith()?;
                self.expect(Token::RParen)?;
                Ok(inner)
            }
            Token::Ident(_) => {
                let path = self.path_expr()?;
                if path.steps.is_empty() {
                    match path.root {
                        Selector::Var(name) => Ok(Arith::Var(name)),
                        Selector::Lit(_) => unreachable!("ident roots parse as Var"),
                    }
                } else {
                    Ok(Arith::PathConst(path))
                }
            }
            other => Err(LyricError::parse(format!(
                "expected arithmetic term, found {other}"
            ))),
        }
    }

    // -------------------------------------------------------------- paths

    fn path_expr(&mut self) -> Result<PathExpr, LyricError> {
        let start = self.pos;
        let root_span = self.cur_span();
        let root = match self.bump() {
            Token::Ident(s) => Selector::Var(s),
            Token::Str(s) => Selector::Lit(OidLit::Str(s)),
            other => {
                return Err(LyricError::parse_at(
                    format!("expected path expression, found {other}"),
                    root_span,
                    vec!["identifier".into(), "string literal".into()],
                    other.to_string(),
                ))
            }
        };
        let mut steps = Vec::new();
        while self.eat(&Token::Dot) {
            let step_start = self.pos;
            let attr = self.ident()?;
            let selector = if self.eat(&Token::LBracket) {
                let negative = self.eat(&Token::Minus);
                let sel = match self.bump() {
                    Token::Ident(s) if !negative => Selector::Var(s),
                    Token::Str(s) if !negative => Selector::Lit(OidLit::Str(s)),
                    Token::Number(n) => {
                        let n = if negative { -n } else { n };
                        if n.is_integer() {
                            Selector::Lit(OidLit::Int(n.numer().to_i64().ok_or_else(|| {
                                LyricError::parse("integer selector out of range")
                            })?))
                        } else {
                            return Err(LyricError::parse(
                                "only integer numeric selectors are supported",
                            ));
                        }
                    }
                    Token::True => Selector::Lit(OidLit::Bool(true)),
                    Token::False => Selector::Lit(OidLit::Bool(false)),
                    other => {
                        return Err(LyricError::parse(format!(
                            "expected selector in brackets, found {other}"
                        )))
                    }
                };
                self.expect(Token::RBracket)?;
                Some(sel)
            } else {
                None
            };
            steps.push(Step {
                attr,
                selector,
                span: self.span_from(step_start),
            });
        }
        Ok(PathExpr {
            root,
            steps,
            span: self.span_from(start),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse_query("SELECT Y FROM Desk X WHERE X.drawer[Y].color['red']").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.items.len(), 1);
        assert_eq!(s.from, vec![FromItem::new("Desk", "X")]);
        match s.where_clause.unwrap() {
            Cond::PathPred(p) => {
                assert_eq!(p.root, Selector::Var("X".into()));
                assert_eq!(p.steps.len(), 2);
                assert_eq!(p.steps[0].attr, "drawer");
                assert_eq!(p.steps[0].selector, Some(Selector::Var("Y".into())));
                assert_eq!(
                    p.steps[1].selector,
                    Some(Selector::Lit(OidLit::Str("red".into())))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn labelled_items_and_oid_function() {
        let q = parse_query(
            "SELECT name = X.name, drawer = W FROM Office_Object X OID FUNCTION OF X, W \
             WHERE X.drawer[W]",
        )
        .unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.items[0].label.as_deref(), Some("name"));
        assert_eq!(s.items[1].label.as_deref(), Some("drawer"));
        assert_eq!(s.oid_function, Some(vec!["X".into(), "W".into()]));
    }

    #[test]
    fn projection_formula_in_select() {
        let q = parse_query(
            "SELECT CO, ((u,v) | E(w,z) AND D(w,z,x,y,u,v) AND x = 6 AND y = 4) \
             FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
        )
        .unwrap();
        let Query::Select(s) = q else { panic!() };
        match &s.items[1].value {
            SelectValue::Formula(Formula::Proj { vars, body, .. }) => {
                assert_eq!(vars, &vec!["u".to_string(), "v".to_string()]);
                // body is an AND tree with Pred and Chain leaves
                fn count_preds(f: &Formula) -> usize {
                    match f {
                        Formula::And(a, b) | Formula::Or(a, b) => count_preds(a) + count_preds(b),
                        Formula::Pred { .. } => 1,
                        _ => 0,
                    }
                }
                assert_eq!(count_preds(body), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        // WHERE has two path predicates joined by AND.
        match s.where_clause.unwrap() {
            Cond::And(a, b) => {
                assert!(matches!(*a, Cond::PathPred(_)));
                assert!(matches!(*b, Cond::PathPred(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chained_constraint() {
        let f = parse_formula("-4 <= w AND w <= 4").unwrap();
        assert!(matches!(f, Formula::And(..)));
        let f = parse_formula("0 <= x <= 10").unwrap();
        match f {
            Formula::Chain { rest, .. } => assert_eq!(rest.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entailment_predicate() {
        let q = parse_query(
            "SELECT DSK FROM Desk DSK WHERE DSK.color = 'red' AND DSK.drawer_center[C] \
             AND (C(p,q) |= p = 0)",
        )
        .unwrap();
        let Query::Select(s) = q else { panic!() };
        fn find_entails(c: &Cond) -> bool {
            match c {
                Cond::And(a, b) | Cond::Or(a, b) => find_entails(a) || find_entails(b),
                Cond::Not(a) => find_entails(a),
                Cond::Entails(..) => true,
                _ => false,
            }
        }
        assert!(find_entails(&s.where_clause.unwrap()));
    }

    #[test]
    fn satisfiability_predicate_vs_grouped_condition() {
        // CST predicate: parses as Sat.
        let q = parse_query(
            "SELECT O FROM Object_In_Room O WHERE O.location[L] AND \
             (L(x,y) AND 0 <= x AND x <= 10)",
        )
        .unwrap();
        let Query::Select(s) = q else { panic!() };
        fn find_sat(c: &Cond) -> bool {
            match c {
                Cond::And(a, b) | Cond::Or(a, b) => find_sat(a) || find_sat(b),
                Cond::Not(a) => find_sat(a),
                Cond::Sat(_) => true,
                _ => false,
            }
        }
        assert!(find_sat(&s.where_clause.unwrap()));
        // Grouped Boolean condition with strings: falls back to Cond.
        let q = parse_query("SELECT X FROM Desk X WHERE (X.color = 'red' OR X.color = 'blue')")
            .unwrap();
        let Query::Select(s) = q else { panic!() };
        assert!(matches!(s.where_clause.unwrap(), Cond::Or(..)));
    }

    #[test]
    fn optimize_operators() {
        let q = parse_query(
            "SELECT MAX(2*x + y SUBJECT TO ((x,y) | C(x,y) AND x >= 0)) FROM Catalog C2",
        )
        .unwrap();
        let Query::Select(s) = q else { panic!() };
        match &s.items[0].value {
            SelectValue::Optimize { kind, .. } => assert_eq!(*kind, OptKind::Max),
            other => panic!("unexpected {other:?}"),
        }
        let q = parse_query("SELECT MIN_POINT(x SUBJECT TO (0 <= x)) FROM Desk D").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert!(matches!(
            &s.items[0].value,
            SelectValue::Optimize {
                kind: OptKind::MinPoint,
                ..
            }
        ));
    }

    #[test]
    fn create_view() {
        let q = parse_query(
            "CREATE VIEW Overlap AS SUBCLASS OF Thing \
             SELECT first = X, second = Y \
             SIGNATURE first => Office_Object, second =>> Office_Object \
             FROM Office_Object X, Office_Object Y \
             OID FUNCTION OF X, Y \
             WHERE X.extent[U] AND Y.extent[V]",
        )
        .unwrap();
        let Query::CreateView(v) = q else { panic!() };
        assert_eq!(v.name, "Overlap");
        assert_eq!(v.parent, "Thing");
        assert_eq!(v.select.signature.len(), 2);
        assert!(!v.select.signature[0].is_set);
        assert!(v.select.signature[1].is_set);
    }

    #[test]
    fn pred_with_and_without_vars() {
        let f = parse_formula("E AND D(w,z,x,y,u,v)").unwrap();
        match f {
            Formula::And(a, b) => {
                assert!(matches!(*a, Formula::Pred { vars: None, .. }));
                match *b {
                    Formula::Pred { vars: Some(vs), .. } => assert_eq!(vs.len(), 6),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pred_on_path() {
        let f = parse_formula("DSK.drawer.extent(w,z) AND z >= w").unwrap();
        match f {
            Formula::And(a, _) => match *a {
                Formula::Pred { path, vars } => {
                    assert_eq!(path.steps.len(), 2);
                    assert_eq!(vars, Some(vec!["w".into(), "z".into()]));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arith_with_paths_and_parens() {
        let f = parse_formula("(x + 1) * 2 <= D.height - 3").unwrap();
        match f {
            Formula::Chain { first, rest, .. } => {
                assert!(matches!(first, Arith::Mul(..)));
                assert_eq!(rest.len(), 1);
                assert!(matches!(rest[0].1, Arith::Sub(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_projection() {
        let f = parse_formula("((u) | ((v) | u = v AND v >= 0))").unwrap();
        match f {
            Formula::Proj { vars, body, .. } => {
                assert_eq!(vars, vec!["u".to_string()]);
                assert!(matches!(*body, Formula::Proj { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_query("SELECT").is_err());
        assert!(parse_query("SELECT X FROM").is_err());
        assert!(parse_query("SELECT X FROM Desk").is_err());
        assert!(parse_formula("x <=").is_err());
        assert!(parse_query("SELECT X FROM Desk X WHERE 'lit'").is_err());
    }
}
