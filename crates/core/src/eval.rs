//! Query evaluation — the XSQL-extension semantics of §2.2/§4.2.
//!
//! Evaluation follows the paper's declarative definition ("all
//! substitutions of oids for variables are considered … consistent with
//! the FROM clause") with one practical refinement: WHERE conjunctions are
//! processed left to right, and path predicates *extend* the current
//! binding with their selector variables, so
//! `X.drawer[Y] AND Y.color['red']` binds `Y` before using it. A variable
//! read before anything binds it is an [`LyricError::UnboundVariable`].
//!
//! Path walks also record interface-renaming facts (`drawer : (p,q)`
//! against `Drawer(x,y)`) into the binding, from which CST-formula
//! instantiation derives the paper's implicit equality constraints.

use crate::ast::*;
use crate::error::LyricError;
use crate::formula::{arith_to_linexpr, display_path, entails, instantiate};
use crate::parser::parse_query;
use crate::scope::{ScopeKey, ScopeLink};
use lyric_arith::Rational;
use lyric_constraint::{Atom, CstObject, Extremum, Interval, IntervalBox, RelOp, Var};
use lyric_engine::{span, SpanKind};
use lyric_oodb::{AttrDef, AttrTarget, ClassDef, Database, Oid, Value};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::OnceLock;
use std::time::Instant;

/// The answer of a query: column names, rows of oids, and the engine
/// work counters accumulated while evaluating it.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Oid>>,
    /// Pipeline statistics for this evaluation: simplex pivots, FM atoms,
    /// DNF disjuncts, sat/entailment checks, memo-cache hits.
    pub stats: lyric_engine::EngineStats,
}

/// Equality is over the *answer* (columns and rows) only: two evaluations
/// of the same query are equal even when their work counters differ (e.g.
/// warm vs cold memo cache).
impl PartialEq for QueryResult {
    fn eq(&self, other: &Self) -> bool {
        self.columns == other.columns && self.rows == other.rows
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|o| o.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// Parse and execute a LyriC statement against a database. `CREATE VIEW`
/// statements mutate the database (new class + extent) and also return the
/// selected rows.
///
/// Runs under an unlimited [`EngineBudget`](lyric_engine::EngineBudget)
/// with the memo cache enabled; the returned [`QueryResult::stats`] carry
/// the work counters. Use [`execute_with_budget`] to bound the evaluation.
pub fn execute(db: &mut Database, src: &str) -> Result<QueryResult, LyricError> {
    let q = parse_query(src)?;
    execute_parsed(db, &q)
}

/// [`execute`] without the static-analysis gate: the query goes straight
/// to the evaluator, so semantic errors surface as runtime errors
/// mid-evaluation. Useful for differential testing of the analyzer and for
/// callers that have already analyzed the query.
pub fn execute_unchecked(db: &mut Database, src: &str) -> Result<QueryResult, LyricError> {
    let q = parse_query(src)?;
    execute_parsed_unchecked(db, &q)
}

/// Parse and execute a statement under an explicit evaluation budget.
/// When a limit is crossed, evaluation aborts promptly and returns
/// [`LyricError::BudgetExceeded`] with the limit and the amount consumed —
/// adversarial constraint blowups degrade gracefully instead of hanging.
pub fn execute_with_budget(
    db: &mut Database,
    src: &str,
    budget: lyric_engine::EngineBudget,
) -> Result<QueryResult, LyricError> {
    execute_with_options(
        db,
        src,
        &lyric_engine::ExecOptions::default().with_budget(budget),
    )
}

/// Parse and execute a statement under explicit
/// [`ExecOptions`](lyric_engine::ExecOptions): budget, memo cache, and the
/// thread budget for parallel regions. With `threads` above 1, FROM-clause
/// binding, WHERE filtering, SELECT items, and large DNF operations fan
/// out across a scoped worker pool; answers are identical to the serial
/// (`threads == 1`) evaluation — work is handed out by index and merged
/// back in index order.
pub fn execute_with_options(
    db: &mut Database,
    src: &str,
    opts: &lyric_engine::ExecOptions,
) -> Result<QueryResult, LyricError> {
    let q = parse_query(src)?;
    check(db, &q)?;
    run_in_context(db, &q, opts.clone(), Some(src))
}

/// Execute a `SELECT` statement against a *shared* database reference.
/// This is the concurrency entry point: many threads may call it on the
/// same `&Database` simultaneously, each evaluation getting its own
/// engine context (so budgets and stats stay per-query) while sharing the
/// process-global memo caches. `CREATE VIEW` statements are rejected —
/// they mutate the database and need [`execute`]'s exclusive access.
pub fn execute_shared(
    db: &Database,
    src: &str,
    opts: &lyric_engine::ExecOptions,
) -> Result<QueryResult, LyricError> {
    let q = parse_query(src)?;
    check(db, &q)?;
    match &q {
        Query::Select(s) => {
            // Slow-query forensics: with `LYRIC_SLOW_EXPLAIN=1` and a slow
            // threshold configured, run under explain instrumentation so
            // the slow log line can carry the per-operator summary.
            if crate::explain::slow_explain_active() {
                return crate::explain::run_explained_select(db, src, s, opts).map(|(res, _)| res);
            }
            let started = Instant::now();
            let trace_id = Cell::new(0u64);
            let fguard = flight_begin(src, opts);
            let progress = fguard.as_ref().map(|g| g.progress());
            let result = match lyric_engine::run_with_opts_flight(opts.clone(), progress, || {
                trace_id.set(lyric_engine::generation());
                if let Some(g) = &fguard {
                    g.set_trace_id(lyric_engine::generation());
                }
                eval_select_query(db, s)
            }) {
                Ok((inner, stats)) => inner.map(|mut res| {
                    res.stats = stats;
                    res
                }),
                Err(exceeded) => Err(exceeded.into()),
            };
            log_query(
                src,
                opts.threads.max(1),
                started,
                trace_id.get(),
                &result,
                None,
            );
            flight_finish(
                fguard,
                src,
                opts.threads.max(1),
                started,
                trace_id.get(),
                &result,
                None,
            );
            result
        }
        Query::CreateView(_) => Err(LyricError::type_error(
            "execute_shared evaluates SELECT statements only; CREATE VIEW mutates the database",
        )),
    }
}

/// Execute an already-parsed statement (unlimited budget, cache enabled).
/// Composes with an outer [`lyric_engine::run_with`]: if a context is
/// already installed, it is used as-is — its budget applies and the stats
/// stamped on the result are the context's cumulative counters.
pub fn execute_parsed(db: &mut Database, q: &Query) -> Result<QueryResult, LyricError> {
    check(db, q)?;
    execute_parsed_unchecked(db, q)
}

/// [`execute_parsed`] without the static-analysis gate; see
/// [`execute_unchecked`].
pub fn execute_parsed_unchecked(db: &mut Database, q: &Query) -> Result<QueryResult, LyricError> {
    if lyric_engine::is_active() {
        let mut res = execute_in_context(db, q)?;
        if let Some(stats) = lyric_engine::snapshot() {
            res.stats = stats;
        }
        return Ok(res);
    }
    run_in_context(db, q, lyric_engine::ExecOptions::default(), None)
}

/// The admission gate: run the static analyzer (default options) and
/// reject the query on any error-severity diagnostic, *before* the
/// evaluator — and before any engine budget — is touched.
pub(crate) fn check(db: &Database, q: &Query) -> Result<(), LyricError> {
    let _span = lyric_engine::span(SpanKind::Analyze, String::new, None);
    let diags: Vec<_> =
        crate::analyze::analyze(db.schema(), q, &crate::analyze::AnalyzerOptions::default())
            .into_iter()
            .filter(|d| d.severity == crate::diag::Severity::Error)
            .collect();
    if diags.is_empty() {
        Ok(())
    } else {
        analyzer_rejections().inc();
        Err(LyricError::Analysis(diags))
    }
}

/// Queries the static analyzer turned away before any engine work ran.
fn analyzer_rejections() -> &'static lyric_metrics::Counter {
    static C: OnceLock<lyric_metrics::Counter> = OnceLock::new();
    C.get_or_init(|| {
        lyric_metrics::global().counter(
            "lyric_analyzer_rejections_total",
            "Queries rejected by the static analyzer before evaluation.",
        )
    })
}

/// Write one structured query-log line (see `lyric_metrics::querylog`
/// for the schema). A no-op unless a log sink is installed. `trace_id`
/// is the engine context generation captured inside the run, so log
/// lines correlate with memo-cache generations and trace output; on a
/// budget abort the engine discards the context's counters, so `stats`
/// are zero for non-`ok` outcomes. `explain` is the pre-serialized
/// compact explain-analyze summary attached to slow-query lines when
/// `LYRIC_SLOW_EXPLAIN=1` (see `crate::explain`).
pub(crate) fn log_query(
    src: &str,
    threads: usize,
    started: Instant,
    trace_id: u64,
    result: &Result<QueryResult, LyricError>,
    explain: Option<&str>,
) {
    use lyric_metrics::querylog::{self, Outcome, Record};
    if !lyric_metrics::enabled() || !querylog::active() {
        return;
    }
    let zero = lyric_engine::EngineStats::default();
    let (outcome, rows, stats) = match result {
        Ok(res) => (Outcome::Ok, res.rows.len() as u64, &res.stats),
        Err(LyricError::BudgetExceeded { resource, .. }) => {
            (Outcome::BudgetExceeded(resource.name()), 0, &zero)
        }
        Err(_) => (Outcome::Error, 0, &zero),
    };
    let named: Vec<(&'static str, u64)> = lyric_engine::trace::stats::COUNTER_NAMES
        .iter()
        .copied()
        .zip(stats.counters())
        .collect();
    querylog::log(&Record {
        query: src,
        outcome,
        rows,
        duration_us: started.elapsed().as_micros() as u64,
        threads,
        trace_id,
        stats: &named,
        explain,
    });
}

/// Register `src` in the in-flight registry (when the flight recorder is
/// enabled) for the duration of one execution. One switch —
/// `LYRIC_FLIGHT=0` or `flight::set_enabled(false)` — turns off both the
/// registry and the completed-query ring, which is the recorder-off
/// baseline experiment E17 measures against.
pub(crate) fn flight_begin(
    src: &str,
    opts: &lyric_engine::ExecOptions,
) -> Option<lyric_engine::flight::InflightGuard> {
    use lyric_engine::flight;
    if !flight::recorder::enabled() {
        return None;
    }
    let b = &opts.budget;
    Some(flight::register(flight::InflightDesc {
        query: src.to_string(),
        query_hash: lyric_metrics::querylog::query_hash(src),
        threads: opts.threads.max(1),
        caps: flight::BudgetCaps {
            pivots: b.max_pivots,
            fm_atoms: b.max_fm_atoms,
            disjuncts: b.max_disjuncts,
            deadline_ms: b.deadline.map(|d| d.as_millis() as u64),
        },
        trace_id: 0,
    }))
}

/// Complete a flight scope opened by [`flight_begin`]: push a completed
/// [`QuerySummary`](lyric_engine::flight::QuerySummary) into the recorder
/// ring and, on an anomaly — budget abort, engine error after the
/// analyzer admitted the query, or a `LYRIC_SLOW_MS` breach — write a
/// black-box dump *before* the guard deregisters, so the dump's in-flight
/// section still contains the offender with its live counters.
/// `plan_summary` is the pre-serialized explain-analyze summary when the
/// query ran under slow-query forensics.
pub(crate) fn flight_finish(
    guard: Option<lyric_engine::flight::InflightGuard>,
    src: &str,
    threads: usize,
    started: Instant,
    trace_id: u64,
    result: &Result<QueryResult, LyricError>,
    plan_summary: Option<&str>,
) {
    use lyric_engine::flight::{self, Trigger};
    use lyric_engine::trace::json::Json;
    let Some(guard) = guard else { return };
    let zero = lyric_engine::EngineStats::default();
    let (outcome, resource, rows, stats) = match result {
        Ok(res) => ("ok", "", res.rows.len() as u64, &res.stats),
        Err(LyricError::BudgetExceeded { resource, .. }) => {
            ("budget_exceeded", resource.name(), 0, &zero)
        }
        Err(_) => ("error", "", 0, &zero),
    };
    let duration_us = started.elapsed().as_micros() as u64;
    flight::record_query(flight::QuerySummary {
        query_hash: lyric_metrics::querylog::query_hash(src),
        query: flight::inflight::truncate_query(src),
        outcome,
        resource: resource.to_string(),
        rows,
        duration_us,
        threads,
        trace_id,
        end_unix_ms: flight::recorder::unix_ms(),
        stats: *stats,
    });
    let trigger = match result {
        Err(LyricError::BudgetExceeded { .. }) => Some(Trigger::BudgetAbort),
        // Front-end rejections are ordinary user errors, not engine
        // anomalies — no black box for a typo.
        Err(LyricError::Lex(_) | LyricError::Parse(_) | LyricError::Analysis(_)) => None,
        Err(_) => Some(Trigger::EngineError),
        Ok(_) => lyric_metrics::querylog::slow_ms()
            .filter(|&ms| duration_us / 1000 >= ms)
            .map(|_| Trigger::Slow),
    };
    if let Some(trigger) = trigger {
        let mut offender = match flight::inflight::current_snapshot().map(|s| s.to_json()) {
            Some(Json::Obj(pairs)) => pairs,
            _ => vec![
                (
                    "query".to_string(),
                    Json::str(flight::inflight::truncate_query(src)),
                ),
                (
                    "query_hash".to_string(),
                    Json::str(format!("{:016x}", lyric_metrics::querylog::query_hash(src))),
                ),
            ],
        };
        offender.push(("outcome".to_string(), Json::str(outcome)));
        if !resource.is_empty() {
            offender.push(("resource".to_string(), Json::str(resource)));
        }
        if let Err(e) = result {
            offender.push(("error".to_string(), Json::str(e.to_string())));
        }
        offender.push(("rows".to_string(), Json::int(rows)));
        offender.push(("duration_us".to_string(), Json::int(duration_us)));
        if let Some(summary) = plan_summary {
            let plan =
                lyric_engine::trace::json::parse(summary).unwrap_or_else(|_| Json::str(summary));
            offender.push(("plan".to_string(), plan));
        }
        let _ = flight::dump(trigger, Some(Json::Obj(offender)));
    }
    drop(guard);
}

/// Parse and execute a statement under a span collector: evaluation runs
/// inside [`lyric_engine::run_traced`], so every instrumented phase (lex,
/// parse, analyze, FROM binding, WHERE predicates, SELECT items, LP
/// solves, FM eliminations) records a span, and the sealed
/// [`Trace`](lyric_engine::trace::Trace) is returned alongside the result.
/// The trace's aggregate stats equal [`QueryResult::stats`] exactly — the
/// per-span deltas partition the query's total work.
///
/// The context is installed *before* parsing (unlike [`execute`], whose
/// parse runs outside any context), so front-end time is attributed too.
pub fn execute_traced(
    db: &mut Database,
    src: &str,
    budget: lyric_engine::EngineBudget,
) -> Result<(QueryResult, lyric_engine::trace::Trace), LyricError> {
    execute_traced_with_options(
        db,
        src,
        &lyric_engine::ExecOptions::default().with_budget(budget),
    )
}

/// [`execute_traced`] with explicit [`ExecOptions`](lyric_engine::ExecOptions).
/// Under a thread budget above 1, the trace grafts per-worker subtrees
/// (distinct `tid`s) into the single logical query tree; Σ per-span self
/// stats still equals [`QueryResult::stats`].
pub fn execute_traced_with_options(
    db: &mut Database,
    src: &str,
    opts: &lyric_engine::ExecOptions,
) -> Result<(QueryResult, lyric_engine::trace::Trace), LyricError> {
    let label = src.trim().to_string();
    let started = Instant::now();
    let trace_id = Cell::new(0u64);
    let fguard = flight_begin(src, opts);
    let progress = fguard.as_ref().map(|g| g.progress());
    let outcome =
        lyric_engine::run_traced_opts_flight(opts.clone(), progress, label, src.len(), || {
            trace_id.set(lyric_engine::generation());
            if let Some(g) = &fguard {
                g.set_trace_id(lyric_engine::generation());
            }
            let q = parse_query(src)?;
            check(db, &q)?;
            execute_in_context(db, &q)
        });
    let result = match outcome {
        Ok((inner, stats, trace)) => inner.map(|mut res| {
            res.stats = stats;
            (res, trace)
        }),
        Err(exceeded) => Err(exceeded.into()),
    };
    if lyric_metrics::querylog::active() || fguard.is_some() {
        let flat = match &result {
            Ok((res, _)) => Ok(res.clone()),
            Err(e) => Err(e.clone()),
        };
        log_query(
            src,
            opts.threads.max(1),
            started,
            trace_id.get(),
            &flat,
            None,
        );
        flight_finish(
            fguard,
            src,
            opts.threads.max(1),
            started,
            trace_id.get(),
            &flat,
            None,
        );
    }
    result
}

/// Install an engine context around the evaluator and translate a budget
/// abort into [`LyricError::BudgetExceeded`]. With `log_src` present the
/// query is also written to the structured query log (when a sink is
/// installed); parsed-only entry points pass `None` since the log keys
/// lines by source hash.
fn run_in_context(
    db: &mut Database,
    q: &Query,
    opts: lyric_engine::ExecOptions,
    log_src: Option<&str>,
) -> Result<QueryResult, LyricError> {
    // Slow-query forensics, as in [`execute_shared`]: logged SELECTs run
    // under explain instrumentation when `LYRIC_SLOW_EXPLAIN=1` is armed.
    if let (Some(src), Query::Select(s)) = (log_src, q) {
        if crate::explain::slow_explain_active() {
            return crate::explain::run_explained_select(db, src, s, &opts).map(|(res, _)| res);
        }
    }
    let started = Instant::now();
    let trace_id = Cell::new(0u64);
    let threads = opts.threads.max(1);
    let fguard = log_src.and_then(|src| flight_begin(src, &opts));
    let progress = fguard.as_ref().map(|g| g.progress());
    let result = match lyric_engine::run_with_opts_flight(opts, progress, || {
        trace_id.set(lyric_engine::generation());
        if let Some(g) = &fguard {
            g.set_trace_id(lyric_engine::generation());
        }
        execute_in_context(db, q)
    }) {
        Ok((inner, stats)) => inner.map(|mut res| {
            res.stats = stats;
            res
        }),
        Err(exceeded) => Err(exceeded.into()),
    };
    if let Some(src) = log_src {
        log_query(src, threads, started, trace_id.get(), &result, None);
        flight_finish(fguard, src, threads, started, trace_id.get(), &result, None);
    }
    result
}

/// The evaluator proper; runs inside whatever engine context is installed.
fn execute_in_context(db: &mut Database, q: &Query) -> Result<QueryResult, LyricError> {
    match q {
        Query::Select(s) => eval_select_query(db, s),
        Query::CreateView(v) => execute_view(db, v),
    }
}

/// The `SELECT` arm of the evaluator: needs only shared access to the
/// database, so [`execute_shared`] can run it from many threads at once.
fn eval_select_query(db: &Database, s: &SelectQuery) -> Result<QueryResult, LyricError> {
    eval_select_query_with(db, s, None)
}

/// [`eval_select_query`] with optional explain instrumentation: when
/// `explain` is present the operator spans carry plan-node ids and the
/// row counters in [`ExplainInfo`](crate::explain::ExplainInfo) are fed.
pub(crate) fn eval_select_query_with(
    db: &Database,
    s: &SelectQuery,
    explain: Option<&crate::explain::ExplainInfo>,
) -> Result<QueryResult, LyricError> {
    let ctx = Ctx::new_explained(db, s, None, explain);
    let (columns, rows) = eval_select(&ctx, s)?;
    let candidate_rows = rows.len() as u64;
    let mut out_rows = Vec::new();
    for (binding, row) in rows {
        let mut r = Vec::new();
        if let Some(vars) = &s.oid_function {
            r.push(oid_function_value("f", vars, &binding)?);
        }
        r.extend(row);
        if !out_rows.contains(&r) {
            out_rows.push(r);
        }
    }
    let mut cols = Vec::new();
    if s.oid_function.is_some() {
        cols.push("oid".to_string());
    }
    cols.extend(columns);
    // Root plan node: candidate rows in, deduplicated answer rows out.
    if let Some(e) = explain {
        e.add_rows(0, candidate_rows, out_rows.len() as u64);
    }
    Ok(QueryResult {
        columns: cols,
        rows: out_rows,
        stats: Default::default(),
    })
}

fn execute_view(db: &mut Database, v: &ViewQuery) -> Result<QueryResult, LyricError> {
    let _span = span(
        SpanKind::ViewMaterialize,
        || v.name.clone(),
        v.name_span.byte_range(),
    );
    let grouped = v.select.from.iter().any(|f| f.var == v.name);
    let (columns, rows) = {
        let ctx = Ctx::new(db, &v.select, Some(&v.name));
        eval_select(&ctx, &v.select)?
    };

    if grouped {
        // One view class per binding of the view-name variable (the
        // paper's Region classification example). The class is named by
        // the oid it is keyed on.
        let mut groups: BTreeMap<Oid, Vec<Oid>> = BTreeMap::new();
        for (binding, row) in &rows {
            let key = binding
                .get(&v.name)
                .ok_or_else(|| LyricError::UnboundVariable(v.name.clone()))?
                .clone();
            let member = row.first().cloned().ok_or_else(|| {
                LyricError::type_error("view query must select at least one column")
            })?;
            groups.entry(key).or_default().push(member);
        }
        let mut out_rows = Vec::new();
        for (key, members) in groups {
            let class_name = key.to_string();
            if db.schema().has_class(&class_name) {
                continue; // idempotent re-creation
            }
            db.create_view_class(&class_name, Some(&v.parent), members.clone())?;
            for m in members {
                out_rows.push(vec![Oid::str(class_name.clone()), m]);
            }
        }
        return Ok(QueryResult {
            columns: vec!["class".into(), "member".into()],
            rows: out_rows,
            stats: Default::default(),
        });
    }

    // Fixed-name view.
    let mut def = ClassDef::new(&v.name).is_a(&v.parent);
    if v.select.oid_function.is_some() {
        // Output objects carry the labelled columns as attributes, typed by
        // the SIGNATURE clause (defaulting to `object`).
        for item in &v.select.items {
            if let Some(label) = &item.label {
                let sig = v.select.signature.iter().find(|s| &s.attr == label);
                let (is_set, class) = match sig {
                    Some(s) => (s.is_set, s.class.clone()),
                    None => (false, "object".to_string()),
                };
                let target = AttrTarget::class(class);
                def = def.attr(if is_set {
                    AttrDef::set(label.clone(), target)
                } else {
                    AttrDef::scalar(label.clone(), target)
                });
            }
        }
    } else if let Some(pd) = db.schema().class(&v.parent) {
        let _ = pd; // dimension marker handled by create_view_class
    }
    db.add_class(def)?;

    let mut out_rows = Vec::new();
    if let Some(vars) = &v.select.oid_function {
        let mut seen = BTreeSet::new();
        for (binding, row) in &rows {
            let oid = oid_function_value(&v.name, vars, binding)?;
            if !seen.insert(oid.clone()) {
                continue;
            }
            let attrs: Vec<(String, Value)> = v
                .select
                .items
                .iter()
                .zip(row)
                .filter_map(|(item, val)| {
                    item.label.clone().map(|l| (l, Value::Scalar(val.clone())))
                })
                .collect();
            db.insert(oid.clone(), &v.name, attrs)?;
            let mut r = vec![oid];
            r.extend(row.clone());
            out_rows.push(r);
        }
    } else {
        let mut seen = BTreeSet::new();
        for (_, row) in &rows {
            let member = row.first().cloned().ok_or_else(|| {
                LyricError::type_error("view query must select at least one column")
            })?;
            if seen.insert(member.clone()) {
                db.declare_instance(&v.name, member.clone())?;
                out_rows.push(vec![member]);
            }
        }
    }
    let mut cols = Vec::new();
    if v.select.oid_function.is_some() {
        cols.push("oid".into());
        cols.extend(columns);
    } else {
        cols.push("member".into());
    }
    Ok(QueryResult {
        columns: cols,
        rows: out_rows,
        stats: Default::default(),
    })
}

fn oid_function_value(fname: &str, vars: &[String], binding: &Binding) -> Result<Oid, LyricError> {
    let mut args = Vec::with_capacity(vars.len());
    for v in vars {
        args.push(
            binding
                .get(v)
                .cloned()
                .ok_or_else(|| LyricError::UnboundVariable(v.clone()))?,
        );
    }
    Ok(Oid::func(fname, args))
}

// --------------------------------------------------------------- bindings

/// A partial assignment of query variables to oids, plus the provenance
/// needed for CST semantics: for selector variables bound to constraint
/// objects, the owning object and the attribute's declared variable list;
/// and every interface-renaming fact discovered while walking paths.
#[derive(Debug, Clone, Default)]
pub(crate) struct Binding {
    vals: BTreeMap<String, Oid>,
    /// Access-path scope of each bound variable (see `scope`).
    scopes: BTreeMap<String, ScopeKey>,
    cst_prov: BTreeMap<String, (ScopeKey, Vec<Var>)>,
    pub(crate) links: Vec<ScopeLink>,
}

impl Binding {
    pub(crate) fn get(&self, name: &str) -> Option<&Oid> {
        self.vals.get(name)
    }

    pub(crate) fn cst_provenance(&self, name: &str) -> Option<&(ScopeKey, Vec<Var>)> {
        self.cst_prov.get(name)
    }

    fn bind(&mut self, name: &str, oid: Oid, scope: ScopeKey) {
        self.vals.insert(name.to_string(), oid);
        self.scopes.insert(name.to_string(), scope);
    }

    fn add_link(&mut self, link: ScopeLink) {
        if !self.links.contains(&link) {
            self.links.push(link);
        }
    }

    /// Equality key: the visible variable assignment (provenance is
    /// derived data).
    fn key(&self) -> &BTreeMap<String, Oid> {
        &self.vals
    }
}

/// Evaluation context: the database plus the set of declared variables
/// (FROM variables, bracket selector variables, and the view-name variable
/// when present). Identifiers outside this set denote ground oids.
pub(crate) struct Ctx<'a> {
    pub(crate) db: &'a Database,
    declared: BTreeSet<String>,
    /// Explain instrumentation: the plan-node map and row counters fed by
    /// `execute_explained`. `None` on every plain evaluation path.
    explain: Option<&'a crate::explain::ExplainInfo>,
}

impl<'a> Ctx<'a> {
    fn new(db: &'a Database, q: &SelectQuery, view_var: Option<&str>) -> Ctx<'a> {
        Ctx::new_explained(db, q, view_var, None)
    }

    fn new_explained(
        db: &'a Database,
        q: &SelectQuery,
        view_var: Option<&str>,
        explain: Option<&'a crate::explain::ExplainInfo>,
    ) -> Ctx<'a> {
        let mut declared: BTreeSet<String> = q.from.iter().map(|f| f.var.clone()).collect();
        if let Some(v) = view_var {
            declared.insert(v.to_string());
        }
        // Bracket selector variables anywhere in the query.
        fn scan_path(p: &PathExpr, out: &mut BTreeSet<String>) {
            for s in &p.steps {
                if let Some(Selector::Var(v)) = &s.selector {
                    out.insert(v.clone());
                }
            }
        }
        fn scan_arith(a: &Arith, out: &mut BTreeSet<String>) {
            match a {
                Arith::PathConst(p) => scan_path(p, out),
                Arith::Add(x, y) | Arith::Sub(x, y) | Arith::Mul(x, y) => {
                    scan_arith(x, out);
                    scan_arith(y, out);
                }
                Arith::Neg(x) => scan_arith(x, out),
                Arith::Num(_) | Arith::Var(_) => {}
            }
        }
        fn scan_formula(f: &Formula, out: &mut BTreeSet<String>) {
            match f {
                Formula::And(a, b) | Formula::Or(a, b) => {
                    scan_formula(a, out);
                    scan_formula(b, out);
                }
                Formula::Not(a) | Formula::Proj { body: a, .. } => scan_formula(a, out),
                Formula::Pred { path, .. } => scan_path(path, out),
                Formula::Chain { first, rest, .. } => {
                    scan_arith(first, out);
                    for (_, a) in rest {
                        scan_arith(a, out);
                    }
                }
            }
        }
        fn scan_cond(c: &Cond, out: &mut BTreeSet<String>) {
            match c {
                Cond::And(a, b) | Cond::Or(a, b) => {
                    scan_cond(a, out);
                    scan_cond(b, out);
                }
                Cond::Not(a) => scan_cond(a, out),
                Cond::PathPred(p) => scan_path(p, out),
                Cond::Compare { lhs, rhs, .. } => {
                    for op in [lhs, rhs] {
                        if let CmpOperand::Path(p) = op {
                            scan_path(p, out);
                        }
                    }
                }
                Cond::Sat(f) => scan_formula(f, out),
                Cond::Entails(a, b) => {
                    scan_formula(a, out);
                    scan_formula(b, out);
                }
            }
        }
        if let Some(w) = &q.where_clause {
            scan_cond(w, &mut declared);
        }
        for item in &q.items {
            match &item.value {
                SelectValue::Path(p) => scan_path(p, &mut declared),
                SelectValue::Formula(f) => scan_formula(f, &mut declared),
                SelectValue::Optimize {
                    objective, formula, ..
                } => {
                    scan_arith(objective, &mut declared);
                    scan_formula(formula, &mut declared);
                }
            }
        }
        Ctx {
            db,
            declared,
            explain,
        }
    }

    /// The plan-node id of a WHERE condition site (pointer identity: the
    /// parsed query never moves during evaluation).
    fn cond_node(&self, c: &Cond) -> Option<u32> {
        self.explain.and_then(|e| e.cond_node(c))
    }

    /// Feed the per-node row counters; a no-op on plain evaluations.
    fn count_rows(&self, node: Option<u32>, rows_in: u64, rows_out: u64) {
        if let (Some(id), Some(e)) = (node, self.explain) {
            e.add_rows(id, rows_in, rows_out);
        }
    }
}

// ------------------------------------------------------------------ paths

/// One satisfying database path: the (possibly extended) binding, the tail
/// oid, and — when the tail came off a CST attribute — the owning object
/// and declared variable list.
pub(crate) struct PathHit {
    pub binding: Binding,
    pub value: Oid,
    /// Access-path scope of the tail value.
    pub scope: ScopeKey,
    /// For CST-attribute tails: (owner scope, declared vars).
    pub cst_info: Option<(ScopeKey, Vec<Var>)>,
}

/// Enumerate the database paths satisfying ground instances of `path`
/// under `binding` (§2.2), extending the binding at variable selectors.
pub(crate) fn eval_path(
    ctx: &Ctx<'_>,
    path: &PathExpr,
    binding: &Binding,
) -> Result<Vec<PathHit>, LyricError> {
    let root = match &path.root {
        Selector::Var(name) => match binding.get(name) {
            Some(o) => o.clone(),
            None if ctx.declared.contains(name) => {
                return Err(LyricError::UnboundVariable(name.clone()))
            }
            None => Oid::Named(name.clone()),
        },
        Selector::Lit(l) => lit_to_oid(l),
    };
    let root_info = match (&path.root, &root) {
        (Selector::Var(name), Oid::Cst(_)) => binding.cst_provenance(name).cloned(),
        _ => None,
    };
    let root_scope = match &path.root {
        Selector::Var(name) => binding
            .scopes
            .get(name)
            .cloned()
            .unwrap_or_else(|| vec![root.clone()]),
        Selector::Lit(_) => vec![root.clone()],
    };
    let mut states: Vec<PathHit> = vec![PathHit {
        binding: binding.clone(),
        value: root,
        scope: root_scope,
        cst_info: root_info,
    }];
    for step in &path.steps {
        let mut next: Vec<PathHit> = Vec::new();
        for state in &states {
            let Some(data) = ctx.db.object(&state.value) else {
                continue;
            };
            let class = data.class().to_string();
            // Attribute name, attribute variable (bound or free).
            let candidates: Vec<String> = if ctx.db.schema().attribute(&class, &step.attr).is_some()
            {
                vec![step.attr.clone()]
            } else if let Some(Oid::Str(bound)) = state.binding.get(&step.attr) {
                vec![bound.clone()]
            } else if step.attr.chars().next().is_some_and(|c| c.is_uppercase()) {
                // Attribute variable: ranges over the object's stored
                // attributes (§2.2 higher-order variables).
                data.attrs().map(|(n, _)| n.to_string()).collect()
            } else {
                // Report the whole IS-A chain that was searched, so the
                // error names the declaring classes inspected rather than
                // just the object's dynamic class.
                let searched: Vec<String> = ctx
                    .db
                    .schema()
                    .ancestors(&class)
                    .into_iter()
                    .map(String::from)
                    .collect();
                return Err(LyricError::UnknownAttribute {
                    class: class.clone(),
                    attr: step.attr.clone(),
                    searched,
                });
            };
            let is_attr_var = ctx.db.schema().attribute(&class, &step.attr).is_none();
            for attr_name in candidates {
                let Some(decl) = ctx.db.schema().attribute(&class, &attr_name) else {
                    continue;
                };
                let decl_target = decl.target.clone();
                let Some(value) = data.attr(&attr_name) else {
                    continue;
                };
                for member in value.iter() {
                    let mut b = state.binding.clone();
                    let child_scope: ScopeKey = {
                        let mut s = state.scope.clone();
                        s.push(member.clone());
                        s
                    };
                    if is_attr_var {
                        b.bind(&step.attr, Oid::str(attr_name.clone()), child_scope.clone());
                    }
                    // Selector filtering / binding.
                    match &step.selector {
                        None => {}
                        Some(Selector::Var(v)) => match b.get(v).cloned() {
                            Some(existing) => {
                                if &existing != member {
                                    continue;
                                }
                            }
                            None => {
                                b.bind(v, member.clone(), child_scope.clone());
                                if let (Oid::Cst(_), AttrTarget::Cst { vars }) =
                                    (member, &decl_target)
                                {
                                    b.cst_prov
                                        .insert(v.clone(), (state.scope.clone(), vars.clone()));
                                }
                            }
                        },
                        Some(Selector::Lit(l)) if &lit_to_oid(l) != member => continue,
                        Some(Selector::Lit(_)) => {}
                    }
                    // Interface-renaming link for class-valued steps.
                    if let AttrTarget::Class {
                        class: target_class,
                        actuals,
                    } = &decl_target
                    {
                        if let Some(target_def) = ctx.db.schema().class(target_class) {
                            if !target_def.interface.is_empty() {
                                let formals = target_def.interface.clone();
                                let acts = actuals.clone().unwrap_or_else(|| formals.clone());
                                b.add_link(ScopeLink {
                                    parent: state.scope.clone(),
                                    child: child_scope.clone(),
                                    pairs: acts.into_iter().zip(formals).collect(),
                                });
                            }
                        }
                    }
                    let cst_info = match &decl_target {
                        AttrTarget::Cst { vars } => Some((state.scope.clone(), vars.clone())),
                        _ => None,
                    };
                    next.push(PathHit {
                        binding: b,
                        value: member.clone(),
                        scope: child_scope,
                        cst_info,
                    });
                }
            }
        }
        states = next;
    }
    Ok(states)
}

fn lit_to_oid(l: &OidLit) -> Oid {
    match l {
        OidLit::Named(n) => Oid::Named(n.clone()),
        OidLit::Int(i) => Oid::Int(*i),
        OidLit::Str(s) => Oid::Str(s.clone()),
        OidLit::Bool(b) => Oid::Bool(*b),
    }
}

// ------------------------------------------------------------- conditions

/// Evaluate a condition, returning the bindings (extensions of `binding`)
/// under which it holds. Under explain instrumentation every condition
/// site feeds its plan node one input row (this invocation) and one
/// output row per satisfying binding.
fn eval_cond(ctx: &Ctx<'_>, cond: &Cond, binding: &Binding) -> Result<Vec<Binding>, LyricError> {
    let node = ctx.cond_node(cond);
    let out = eval_cond_inner(ctx, cond, node, binding)?;
    ctx.count_rows(node, 1, out.len() as u64);
    Ok(out)
}

fn eval_cond_inner(
    ctx: &Ctx<'_>,
    cond: &Cond,
    node: Option<u32>,
    binding: &Binding,
) -> Result<Vec<Binding>, LyricError> {
    match cond {
        Cond::And(a, b) => {
            let mut out = Vec::new();
            for b1 in eval_cond(ctx, a, binding)? {
                out.extend(eval_cond(ctx, b, &b1)?);
            }
            Ok(dedup_bindings(out))
        }
        Cond::Or(a, b) => {
            let mut out = eval_cond(ctx, a, binding)?;
            out.extend(eval_cond(ctx, b, binding)?);
            Ok(dedup_bindings(out))
        }
        Cond::Not(a) => {
            if eval_cond(ctx, a, binding)?.is_empty() {
                Ok(vec![binding.clone()])
            } else {
                Ok(vec![])
            }
        }
        Cond::PathPred(p) => {
            let _span = lyric_engine::span_node(
                SpanKind::PathPred,
                node,
                || display_path(p),
                p.span.byte_range(),
            );
            let hits = eval_path(ctx, p, binding)?;
            Ok(dedup_bindings(
                hits.into_iter().map(|h| h.binding).collect(),
            ))
        }
        Cond::Compare { lhs, op, rhs } => {
            let _span = lyric_engine::span_node(
                SpanKind::Compare,
                node,
                String::new,
                cond.span().byte_range(),
            );
            let l = operand_values(ctx, lhs, binding)?;
            let r = operand_values(ctx, rhs, binding)?;
            let holds = compare_sets(&l, *op, &r)?;
            Ok(if holds { vec![binding.clone()] } else { vec![] })
        }
        Cond::Sat(f) => {
            let _span = lyric_engine::span_node(
                SpanKind::SatCheck,
                node,
                String::new,
                f.span().byte_range(),
            );
            let obj = instantiate(ctx, f, binding)?;
            Ok(if obj.satisfiable() {
                vec![binding.clone()]
            } else {
                vec![]
            })
        }
        Cond::Entails(f1, f2) => {
            let _span = lyric_engine::span_node(
                SpanKind::EntailCheck,
                node,
                String::new,
                cond.span().byte_range(),
            );
            let holds = entails(ctx, f1, f2, binding)?;
            Ok(if holds { vec![binding.clone()] } else { vec![] })
        }
    }
}

fn dedup_bindings(bindings: Vec<Binding>) -> Vec<Binding> {
    let mut seen: BTreeSet<BTreeMap<String, Oid>> = BTreeSet::new();
    let mut out = Vec::new();
    for b in bindings {
        if seen.insert(b.key().clone()) {
            out.push(b);
        }
    }
    out
}

/// The value set of a comparison operand. Numeric oids are normalized to
/// rationals so `3` and `3.0` compare equal.
fn operand_values(
    ctx: &Ctx<'_>,
    op: &CmpOperand,
    binding: &Binding,
) -> Result<BTreeSet<Oid>, LyricError> {
    let normalize = |o: &Oid| match o {
        Oid::Int(i) => Oid::Rat(Rational::from_int(*i)),
        other => other.clone(),
    };
    match op {
        CmpOperand::Num(n) => Ok([Oid::Rat(n.clone())].into()),
        CmpOperand::Str(s) => Ok([Oid::str(s.clone())].into()),
        CmpOperand::Bool(b) => Ok([Oid::Bool(*b)].into()),
        CmpOperand::Path(p) => {
            let hits = eval_path(ctx, p, binding)?;
            Ok(hits.iter().map(|h| normalize(&h.value)).collect())
        }
    }
}

fn compare_sets(l: &BTreeSet<Oid>, op: CmpOp, r: &BTreeSet<Oid>) -> Result<bool, LyricError> {
    match op {
        CmpOp::Eq => Ok(l == r),
        CmpOp::Neq => Ok(l != r),
        CmpOp::Contains => Ok(r.is_subset(l)),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let (a, b) = match (l.iter().next(), r.iter().next()) {
                (Some(a), Some(b)) if l.len() == 1 && r.len() == 1 => (a, b),
                _ => {
                    return Err(LyricError::type_error(
                        "ordered comparison requires singleton values",
                    ))
                }
            };
            let (a, b) = match (a.as_rational(), b.as_rational()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(LyricError::type_error(
                        "ordered comparison requires numeric values",
                    ))
                }
            };
            Ok(match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                _ => unreachable!(),
            })
        }
    }
}

// --------------------------------------------------------- index planning
//
// When [`ExecOptions::index`](lyric_engine::ExecOptions) is on, each FROM
// extent is pre-filtered through the generation-stamped store index
// (`lyric_store`) before binding. A WHERE conjunct is *index-answerable*
// for FROM variable `X` when it has one of two shapes:
//
// * scalar — `X.attr <op> lit` (or mirrored) over a declared
//   single-valued scalar attribute, `<op>` one of `=`, `<`, `<=`, `>`,
//   `>=` with a literal comparand;
// * box — `X.attr[E]` over a declared CST attribute, paired with a
//   top-level `(E(v1,…,vk) AND chains)` satisfiability conjunct whose
//   chains are path-free pseudo-linear constraints: the chains'
//   interval-box reading at `v1,…,vk` is the positional query window,
//   and objects all of whose stored members are box-disjoint from it
//   cannot satisfy the pair.
//
// Every probe returns a *superset* of the oids a full scan could keep or
// error on (see `lyric_store`'s soundness contract), so filtering the
// extent never changes the answer. The one latitude it takes — like the
// evaluator's own `AND` short-circuit — is that conjuncts are never
// evaluated at all for pruned bindings, so a sibling conjunct that would
// *error* under a scan of an excluded object is skipped.

/// The leaves of a WHERE condition's top-level `AND` tree, in
/// evaluation order.
fn top_conjuncts(c: &Cond) -> Vec<&Cond> {
    fn walk<'q>(c: &'q Cond, out: &mut Vec<&'q Cond>) {
        match c {
            Cond::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            other => out.push(other),
        }
    }
    let mut out = Vec::new();
    walk(c, &mut out);
    out
}

/// One index probe derived from a WHERE conjunct.
enum ProbeReq<'q> {
    Eq {
        attr: &'q str,
        key: Oid,
    },
    Range {
        attr: &'q str,
        window: Interval,
    },
    Box {
        attr: &'q str,
        window: Vec<Interval>,
    },
}

/// `var.attr` as a single-step, selector-free path over a declared
/// single-valued scalar attribute — the shape the scalar index covers.
fn indexed_scalar_attr<'q>(
    ctx: &Ctx<'_>,
    class: &str,
    var: &str,
    operand: &'q CmpOperand,
) -> Option<&'q str> {
    let CmpOperand::Path(p) = operand else {
        return None;
    };
    match &p.root {
        Selector::Var(v) if v == var => {}
        _ => return None,
    }
    let [step] = p.steps.as_slice() else {
        return None;
    };
    if step.selector.is_some() {
        return None;
    }
    let decl = ctx.db.schema().attribute(class, &step.attr)?;
    (!decl.is_set && matches!(decl.target, AttrTarget::Class { .. })).then_some(step.attr.as_str())
}

/// A literal comparison operand as an index key.
fn literal_key(operand: &CmpOperand) -> Option<Oid> {
    match operand {
        CmpOperand::Num(n) => Some(Oid::Rat(n.clone())),
        CmpOperand::Str(s) => Some(Oid::str(s.clone())),
        CmpOperand::Bool(b) => Some(Oid::Bool(*b)),
        CmpOperand::Path(_) => None,
    }
}

/// Derive a scalar probe from a comparison conjunct, if it has the
/// index-answerable shape for `var`.
fn scalar_probe<'q>(
    ctx: &Ctx<'_>,
    class: &str,
    var: &str,
    lhs: &'q CmpOperand,
    op: CmpOp,
    rhs: &'q CmpOperand,
) -> Option<ProbeReq<'q>> {
    // Orient so the path is on the left.
    let (attr, key_side, op) = if let Some(a) = indexed_scalar_attr(ctx, class, var, lhs) {
        (a, rhs, op)
    } else if let Some(a) = indexed_scalar_attr(ctx, class, var, rhs) {
        let mirrored = match op {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        };
        (a, lhs, mirrored)
    } else {
        return None;
    };
    match op {
        CmpOp::Eq => Some(ProbeReq::Eq {
            attr,
            key: literal_key(key_side)?,
        }),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let CmpOperand::Num(n) = key_side else {
                return None;
            };
            let bound = Some((n.clone(), matches!(op, CmpOp::Lt | CmpOp::Gt)));
            let window = match op {
                CmpOp::Lt | CmpOp::Le => Interval::of_bounds(None, bound),
                _ => Interval::of_bounds(bound, None),
            };
            Some(ProbeReq::Range { attr, window })
        }
        CmpOp::Neq | CmpOp::Contains => None,
    }
}

/// Derive a bounding-box probe from a `var.attr[E]` path predicate, if a
/// top-level satisfiability conjunct supplies a query window for `E`.
fn box_probe<'q>(
    ctx: &Ctx<'_>,
    class: &str,
    var: &str,
    p: &'q PathExpr,
    conjuncts: &[&'q Cond],
) -> Option<ProbeReq<'q>> {
    match &p.root {
        Selector::Var(v) if v == var => {}
        _ => return None,
    }
    let [step] = p.steps.as_slice() else {
        return None;
    };
    let Some(Selector::Var(member_var)) = &step.selector else {
        return None;
    };
    if member_var == var {
        return None;
    }
    let decl = ctx.db.schema().attribute(class, &step.attr)?;
    let AttrTarget::Cst { vars } = &decl.target else {
        return None;
    };
    let arity = vars.len();
    for c in conjuncts {
        let Cond::Sat(f) = c else { continue };
        if let Some(window) = sat_window(ctx, f, member_var, arity) {
            return Some(ProbeReq::Box {
                attr: step.attr.as_str(),
                window,
            });
        }
    }
    None
}

/// The positional query window of a `Sat` conjunct of the exact shape
/// `E(v1,…,vk) AND <chains>`: one reference to the member variable with
/// an explicit renaming list, conjoined only with path-free
/// pseudo-linear chains. The window is the chains' interval-box reading
/// at each renaming variable; any other shape yields `None` (no
/// pruning). Chains may mention further variables — the box treats them
/// as free, which only *widens* the reading, so the window stays a
/// sound over-approximation.
fn sat_window(ctx: &Ctx<'_>, f: &Formula, member_var: &str, arity: usize) -> Option<Vec<Interval>> {
    let mut pred_vars: Option<&Vec<String>> = None;
    let mut atoms: Vec<Atom> = Vec::new();
    if !collect_sat_shape(f, member_var, &mut pred_vars, &mut atoms) {
        return None;
    }
    let vs = pred_vars?;
    if vs.len() != arity || atoms.is_empty() {
        return None;
    }
    // A renaming variable that is also a query variable would be
    // substituted per-binding by the evaluator; the positional reading
    // below would then be meaningless. Refuse to prune.
    if vs.iter().any(|v| ctx.declared.contains(v)) {
        return None;
    }
    let bx = IntervalBox::of_atoms(&atoms);
    if bx.is_empty() {
        // The chains alone are unsatisfiable; an empty box has no
        // per-variable reading, so let the Sat checks decide.
        return None;
    }
    Some(vs.iter().map(|v| bx.interval(&Var::new(v))).collect())
}

/// Walk a `Sat` formula's `AND` tree, recording the single `member_var`
/// reference's renaming list and lowering every chain to atoms. Returns
/// `false` as soon as any non-conforming node appears.
fn collect_sat_shape<'q>(
    f: &'q Formula,
    member_var: &str,
    pred_vars: &mut Option<&'q Vec<String>>,
    atoms: &mut Vec<Atom>,
) -> bool {
    match f {
        Formula::And(a, b) => {
            collect_sat_shape(a, member_var, pred_vars, atoms)
                && collect_sat_shape(b, member_var, pred_vars, atoms)
        }
        Formula::Pred { path, vars } => {
            let Some(vs) = vars else { return false };
            if !path.steps.is_empty() || pred_vars.is_some() {
                return false;
            }
            match &path.root {
                Selector::Var(v) if v == member_var => {
                    *pred_vars = Some(vs);
                    true
                }
                _ => false,
            }
        }
        Formula::Chain { first, rest, .. } => {
            let Ok(mut prev) = crate::storage::arith_to_linexpr_pure(first) else {
                return false;
            };
            for (op, next) in rest {
                let Ok(rhs) = crate::storage::arith_to_linexpr_pure(next) else {
                    return false;
                };
                let relop = match op {
                    CRelOp::Eq => RelOp::Eq,
                    CRelOp::Neq => RelOp::Neq,
                    CRelOp::Le => RelOp::Le,
                    CRelOp::Lt => RelOp::Lt,
                    CRelOp::Ge => RelOp::Ge,
                    CRelOp::Gt => RelOp::Gt,
                };
                atoms.push(Atom::new(prev.clone(), relop, rhs.clone()));
                prev = rhs;
            }
            true
        }
        Formula::Or(..) | Formula::Not(..) | Formula::Proj { .. } => false,
    }
}

/// Pre-filter a FROM extent through the store index: intersect the
/// candidate sets of every index-answerable WHERE conjunct (each merged
/// with the novelty overlay of post-build writes) and keep only extent
/// members inside the intersection. Counts one `index_probes` per probe
/// answered and the dropped members as `index_pruned`.
fn index_filter_extent(ctx: &Ctx<'_>, w: &Cond, f: &FromItem, extent: Vec<Oid>) -> Vec<Oid> {
    if extent.is_empty() {
        return extent;
    }
    let conjuncts = top_conjuncts(w);
    let mut reqs: Vec<ProbeReq<'_>> = Vec::new();
    for c in &conjuncts {
        match c {
            Cond::Compare { lhs, op, rhs } => {
                if let Some(r) = scalar_probe(ctx, &f.class, &f.var, lhs, *op, rhs) {
                    reqs.push(r);
                }
            }
            Cond::PathPred(p) => {
                if let Some(r) = box_probe(ctx, &f.class, &f.var, p, &conjuncts) {
                    reqs.push(r);
                }
            }
            _ => {}
        }
    }
    if reqs.is_empty() {
        return extent;
    }
    let idx = lyric_store::index_for(ctx.db);
    let novelty = ctx.db.oids_touched_since(idx.generation());
    let mut probes = 0u64;
    let mut candidates: Option<Vec<Oid>> = None;
    for req in reqs {
        let hit = match req {
            ProbeReq::Eq { attr, key } => idx.probe_eq(&f.class, attr, &key),
            ProbeReq::Range { attr, window } => idx.probe_range(&f.class, attr, &window),
            ProbeReq::Box { attr, window } => idx.probe_box(&f.class, attr, &window),
        };
        let Some(hit) = hit else { continue };
        probes += 1;
        // Writes since the index build are invisible to it; every probe
        // result must re-admit them.
        let hit = lyric_store::merge_with_novelty(&hit, &novelty);
        candidates = Some(match candidates {
            None => hit,
            Some(prev) => lyric_store::intersect_sorted(&prev, &hit),
        });
    }
    let Some(cand) = candidates else {
        return extent;
    };
    let total = extent.len();
    let kept: Vec<Oid> = extent
        .into_iter()
        .filter(|oid| cand.binary_search(oid).is_ok())
        .collect();
    let pruned = (total - kept.len()) as u64;
    lyric_engine::tally(|s| {
        s.index_probes += probes;
        s.index_pruned += pruned;
    });
    lyric_engine::trace_event(|| lyric_engine::trace::EventKind::IndexProbe {
        candidates: total as u64,
        pruned,
    });
    kept
}

// ----------------------------------------------------------------- select

type SelectRows = Vec<(Binding, Vec<Oid>)>;

fn eval_select(ctx: &Ctx<'_>, q: &SelectQuery) -> Result<(Vec<String>, SelectRows), LyricError> {
    // FROM: cross product of class extents.
    for f in &q.from {
        if !ctx.db.schema().has_class(&f.class) {
            return Err(LyricError::UnknownClass(f.class.clone()));
        }
    }
    let mut bindings: Vec<Binding> = vec![Binding::default()];
    for (fi, f) in q.from.iter().enumerate() {
        let node = ctx.explain.and_then(|e| e.binder_node(fi));
        let _span = lyric_engine::span_node(
            SpanKind::FromBind,
            node,
            || format!("{} {}", f.class, f.var),
            f.class_span.join(f.var_span).byte_range(),
        );
        let mut extent = ctx.db.extent(&f.class);
        if lyric_engine::index_enabled() {
            if let Some(w) = &q.where_clause {
                extent = index_filter_extent(ctx, w, f, extent);
            }
        }
        let before = bindings.len() as u64;
        // Each prior binding expands independently; rows come back in
        // binding order, so the cross product is identical to the serial
        // nested loop.
        let expanded = lyric_engine::parallel_map(&bindings, |_, b| {
            extent
                .iter()
                .map(|oid| {
                    let mut b2 = b.clone();
                    b2.bind(&f.var, oid.clone(), vec![oid.clone()]);
                    b2
                })
                .collect::<Vec<Binding>>()
        });
        bindings = expanded.into_iter().flatten().collect();
        ctx.count_rows(node, before, bindings.len() as u64);
    }
    // WHERE: each binding is filtered independently (the per-binding
    // sat/entailment checks dominate query time). Results are merged in
    // binding order, then deduplicated exactly as in the serial loop; on
    // error, the lowest-index binding's error is reported.
    if let Some(w) = &q.where_clause {
        let node = ctx.explain.and_then(|e| e.where_node());
        let _span =
            lyric_engine::span_node(SpanKind::Where, node, String::new, w.span().byte_range());
        let before = bindings.len() as u64;
        let evaluated = lyric_engine::parallel_map(&bindings, |_, b| eval_cond(ctx, w, b));
        let mut filtered = Vec::new();
        for r in evaluated {
            filtered.extend(r?);
        }
        bindings = dedup_bindings(filtered);
        ctx.count_rows(node, before, bindings.len() as u64);
    }
    // SELECT items.
    let columns: Vec<String> = q
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| column_name(i, item))
        .collect();
    // SELECT items evaluate per binding with no cross-binding dependency;
    // combos are rebuilt in binding order so row order matches the serial
    // loop exactly.
    let per_binding = lyric_engine::parallel_map(&bindings, |_, b| {
        let mut per_item: Vec<Vec<Oid>> = Vec::with_capacity(q.items.len());
        for (i, item) in q.items.iter().enumerate() {
            let node = ctx.explain.and_then(|e| e.item_node(i));
            let _span = lyric_engine::span_node(
                SpanKind::SelectItem,
                node,
                || column_name(i, item),
                item.span.byte_range(),
            );
            let vals = eval_item(ctx, item, b)?;
            ctx.count_rows(node, 1, vals.len() as u64);
            per_item.push(vals);
        }
        if per_item.iter().any(|v| v.is_empty()) {
            return Ok(Vec::new());
        }
        // Cross product of multi-valued items.
        let mut combos: Vec<Vec<Oid>> = vec![Vec::new()];
        for vals in &per_item {
            let mut next = Vec::with_capacity(combos.len() * vals.len());
            for c in &combos {
                for v in vals {
                    let mut c2 = c.clone();
                    c2.push(v.clone());
                    next.push(c2);
                }
            }
            combos = next;
        }
        Ok::<Vec<Vec<Oid>>, LyricError>(combos)
    });
    let mut rows: SelectRows = Vec::new();
    for (b, combos) in bindings.into_iter().zip(per_binding) {
        for c in combos? {
            rows.push((b.clone(), c));
        }
    }
    Ok((columns, rows))
}

pub(crate) fn column_name(i: usize, item: &SelectItem) -> String {
    if let Some(l) = &item.label {
        return l.clone();
    }
    match &item.value {
        SelectValue::Path(p) => display_path(p),
        SelectValue::Formula(_) => format!("cst_{i}"),
        SelectValue::Optimize { kind, .. } => match kind {
            OptKind::Max => format!("max_{i}"),
            OptKind::Min => format!("min_{i}"),
            OptKind::MaxPoint => format!("max_point_{i}"),
            OptKind::MinPoint => format!("min_point_{i}"),
        },
    }
}

fn eval_item(ctx: &Ctx<'_>, item: &SelectItem, b: &Binding) -> Result<Vec<Oid>, LyricError> {
    match &item.value {
        SelectValue::Path(p) => {
            let hits = eval_path(ctx, p, b)?;
            let mut vals: Vec<Oid> = Vec::new();
            for h in hits {
                if !vals.contains(&h.value) {
                    vals.push(h.value);
                }
            }
            Ok(vals)
        }
        SelectValue::Formula(f) => {
            let obj = instantiate(ctx, f, b)?;
            Ok(vec![Oid::cst(obj)])
        }
        SelectValue::Optimize {
            kind,
            objective,
            formula,
        } => {
            let obj = instantiate(ctx, formula, b)?;
            let goal = arith_to_linexpr(ctx, objective, b)?;
            // The LP operators optimize over the formula's point set; the
            // objective must range over its dimensions.
            let missing: Vec<Var> = goal
                .vars()
                .into_iter()
                .filter(|v| !obj.free().contains(v))
                .collect();
            if !missing.is_empty() {
                return Err(LyricError::type_error(format!(
                    "objective variable {} is not a dimension of the SUBJECT TO formula",
                    missing[0]
                )));
            }
            let extremum = {
                let _span = span(
                    SpanKind::Optimize,
                    || match kind {
                        OptKind::Max | OptKind::MaxPoint => "max".to_string(),
                        OptKind::Min | OptKind::MinPoint => "min".to_string(),
                    },
                    objective.span().join(formula.span()).byte_range(),
                );
                match kind {
                    OptKind::Max | OptKind::MaxPoint => obj.maximize(&goal),
                    OptKind::Min | OptKind::MinPoint => obj.minimize(&goal),
                }
            };
            match extremum {
                Extremum::Infeasible => Err(LyricError::EmptyOptimization),
                Extremum::Unbounded => Err(LyricError::Unbounded),
                Extremum::Finite {
                    bound,
                    attained,
                    witness,
                } => match kind {
                    OptKind::Max | OptKind::Min => Ok(vec![Oid::Rat(bound)]),
                    OptKind::MaxPoint | OptKind::MinPoint => {
                        if !attained {
                            return Err(LyricError::NotAttained);
                        }
                        let values: Vec<Rational> = obj
                            .free()
                            .iter()
                            .map(|v| witness.get(v).cloned().unwrap_or_else(Rational::zero))
                            .collect();
                        Ok(vec![Oid::cst(CstObject::point(
                            obj.free().to_vec(),
                            &values,
                        ))])
                    }
                },
            }
        }
    }
}
