//! Schema-derived implicit equality constraints (§3.2 / §4.1).
//!
//! LyriC's most distinctive semantic rule: CST attributes are declared with
//! variable lists (`drawer_center : CST(p,q)`), classes export a variable
//! *interface* (`Drawer(x,y)`), and attributes ranging over a class may
//! *rename* that interface (`drawer : (p,q)`). When CST attributes are used
//! together inside one query formula, the equalities implied by these
//! declarations are conjoined automatically — the paper's example derives
//! `p = x1 ∧ q = y1` from `DSK.drawer_center[DC]` and
//! `DSK.drawer.translation` renamed to `(w1,z1,x1,y1,u1,v1)`.
//!
//! The implementation models a **scope** per *access path* to an object
//! (the chain of oids from the path root): each CST attribute's declared
//! variables live in its owner's scope, and an interface renaming links
//! `(owner, actualᵢ)` to `(part, interfaceᵢ)`. Keying scopes by access
//! chain rather than bare object identity matters when one catalog object
//! is shared by several in-room objects: each usage has its own coordinate
//! variables, so the two rooms' desks must *not* have their local frames
//! unified merely because they share `standard_desk`. A query formula attaches *query variables* to
//! scope nodes positionally (via the `O(x₁,…,xₙ)` lists, or the schema
//! names when the list is omitted). A union–find over the links then emits
//! one equality atom per pair of distinct query variables that land in the
//! same node class.

use lyric_constraint::{Atom, LinExpr, Var};
use lyric_oodb::Oid;
use std::collections::BTreeMap;

/// A scope: the access chain of oids leading to an object.
pub(crate) type ScopeKey = Vec<Oid>;

/// An interface-renaming fact discovered while walking a path:
/// `(parent scope, pairs.i.0) ≡ (child scope, pairs.i.1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ScopeLink {
    pub parent: ScopeKey,
    pub child: ScopeKey,
    pub pairs: Vec<(Var, Var)>,
}

/// A CST-object reference of a formula, resolved against a binding.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedPred {
    /// Positional query-variable names.
    pub query_vars: Vec<Var>,
    /// The owning scope (access chain) of the declared variables.
    pub owner: ScopeKey,
    /// The attribute's declared variable list (schema names).
    pub declared: Vec<Var>,
}

/// Node key: a declared variable in an access-path scope.
type Node = (ScopeKey, Var);

/// Union–find over scope nodes with attached query variables.
#[derive(Default)]
struct UnionFind {
    parent: BTreeMap<Node, Node>,
}

impl UnionFind {
    fn find(&mut self, n: &Node) -> Node {
        let p = match self.parent.get(n) {
            None => return n.clone(),
            Some(p) => p.clone(),
        };
        if &p == n {
            return p;
        }
        let root = self.find(&p);
        self.parent.insert(n.clone(), root.clone());
        root
    }

    fn union(&mut self, a: &Node, b: &Node) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Derive the implicit equality atoms for one formula: `preds` are its
/// resolved CST references, `links` every renaming fact in scope (gathered
/// from all path walks of the query so far).
pub(crate) fn implicit_equalities(preds: &[ResolvedPred], links: &[ScopeLink]) -> Vec<Atom> {
    let mut uf = UnionFind::default();
    for link in links {
        for (pv, cv) in &link.pairs {
            uf.union(
                &(link.parent.clone(), pv.clone()),
                &(link.child.clone(), cv.clone()),
            );
        }
    }
    // Attach query variables to node classes.
    let mut attached: BTreeMap<Node, Vec<Var>> = BTreeMap::new();
    for p in preds {
        debug_assert_eq!(p.query_vars.len(), p.declared.len());
        for (decl, qv) in p.declared.iter().zip(&p.query_vars) {
            let root = uf.find(&(p.owner.clone(), decl.clone()));
            let entry = attached.entry(root).or_default();
            if !entry.contains(qv) {
                entry.push(qv.clone());
            }
        }
    }
    let mut out = Vec::new();
    for (_, qvars) in attached {
        for other in &qvars[1..] {
            out.push(Atom::eq(
                LinExpr::var(qvars[0].clone()),
                LinExpr::var(other.clone()),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyric_constraint::Conjunction;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    fn pred(owner: &[Oid], declared: &[&str], query: &[&str]) -> ResolvedPred {
        ResolvedPred {
            query_vars: query.iter().map(|s| v(s)).collect(),
            owner: owner.to_vec(),
            declared: declared.iter().map(|s| v(s)).collect(),
        }
    }

    #[test]
    fn paper_desk_drawer_equalities() {
        // DSK.drawer_center declared CST(p,q), queried as DC(p,q);
        // drawer : (p,q) renames Drawer(x,y);
        // drawer.translation declared CST(w,z,x,y,u,v), queried with
        // (w1,z1,x1,y1,u1,v1). Expect p = x1 and q = y1.
        let dsk = vec![Oid::named("dsk")];
        let drw = vec![Oid::named("dsk"), Oid::named("drw")];
        let preds = vec![
            pred(&dsk, &["p", "q"], &["p", "q"]),
            pred(
                &drw,
                &["w", "z", "x", "y", "u", "v"],
                &["w1", "z1", "x1", "y1", "u1", "v1"],
            ),
        ];
        let links = vec![ScopeLink {
            parent: dsk.clone(),
            child: drw.clone(),
            pairs: vec![(v("p"), v("x")), (v("q"), v("y"))],
        }];
        let eqs = implicit_equalities(&preds, &links);
        let got = Conjunction::of(eqs);
        let want = Conjunction::of([
            Atom::eq(LinExpr::var(v("p")), LinExpr::var(v("x1"))),
            Atom::eq(LinExpr::var(v("q")), LinExpr::var(v("y1"))),
        ]);
        assert_eq!(got, want);
    }

    #[test]
    fn same_attribute_two_query_names() {
        // The same attribute referenced twice with different query variables
        // forces those variables equal.
        let o = vec![Oid::named("o")];
        let preds = vec![pred(&o, &["w"], &["a"]), pred(&o, &["w"], &["b"])];
        let eqs = implicit_equalities(&preds, &[]);
        assert_eq!(
            eqs,
            vec![Atom::eq(LinExpr::var(v("a")), LinExpr::var(v("b")))]
        );
    }

    #[test]
    fn distinct_objects_do_not_unify() {
        // Two different desks' (p,q): no equality even with equal names in
        // the schema (each instance has its own scope).
        let d1 = vec![Oid::named("d1")];
        let d2 = vec![Oid::named("d2")];
        let preds = vec![pred(&d1, &["p"], &["a"]), pred(&d2, &["p"], &["b"])];
        assert!(implicit_equalities(&preds, &[]).is_empty());
    }

    #[test]
    fn transitive_links() {
        // room → desk → drawer chain of renamings: query vars at both ends
        // must be equated.
        let room = vec![Oid::named("room")];
        let desk = vec![Oid::named("room"), Oid::named("desk")];
        let drawer = vec![Oid::named("room"), Oid::named("desk"), Oid::named("drawer")];
        let links = vec![
            ScopeLink {
                parent: room.clone(),
                child: desk.clone(),
                pairs: vec![(v("a"), v("b"))],
            },
            ScopeLink {
                parent: desk.clone(),
                child: drawer.clone(),
                pairs: vec![(v("b"), v("c"))],
            },
        ];
        let preds = vec![pred(&room, &["a"], &["qa"]), pred(&drawer, &["c"], &["qc"])];
        let eqs = implicit_equalities(&preds, &links);
        assert_eq!(eqs.len(), 1);
        assert_eq!(
            eqs[0],
            Atom::eq(LinExpr::var(v("qa")), LinExpr::var(v("qc")))
        );
    }

    #[test]
    fn same_query_var_attached_twice_emits_nothing() {
        let o = vec![Oid::named("o")];
        let preds = vec![pred(&o, &["w"], &["a"]), pred(&o, &["w"], &["a"])];
        assert!(implicit_equalities(&preds, &[]).is_empty());
    }
}
