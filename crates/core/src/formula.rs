//! CST-formula instantiation (§4.2).
//!
//! Given a binding of query variables to oids, a [`Formula`] is turned into
//! a [`CstObject`]:
//!
//! 1. every `O(x₁,…,xₙ)` reference resolves its path to a stored constraint
//!    object and aligns it positionally to the query variables (schema
//!    names are copied when the list is omitted);
//! 2. pseudo-linear atoms evaluate their path sub-terms to rational
//!    constants;
//! 3. the schema-derived implicit equalities (see [`crate::scope`]) are
//!    conjoined **before the outermost projection is applied** — the
//!    paper's rule "to create an oid of a new CST object, we first add
//!    implicit constraint derived by the schema";
//! 4. the result is canonicalized (§3.1 cheap canonical form).

use crate::ast::{Arith, CRelOp, Formula};
use crate::error::LyricError;
use crate::eval::{eval_path, Binding, Ctx};
use crate::scope::{implicit_equalities, ResolvedPred, ScopeLink};
use lyric_arith::Rational;
use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, RelOp, Var};
use std::collections::BTreeSet;

/// Instantiate a formula as a constraint object and canonicalize it.
pub(crate) fn instantiate(
    ctx: &Ctx<'_>,
    f: &Formula,
    binding: &Binding,
) -> Result<CstObject, LyricError> {
    let _span = lyric_engine::span(
        lyric_engine::SpanKind::Instantiate,
        String::new,
        f.span().byte_range(),
    );
    let mut preds: Vec<ResolvedPred> = Vec::new();
    let mut links: Vec<ScopeLink> = binding.links.clone();
    let (proj, body) = match f {
        Formula::Proj { vars, body, .. } => (Some(vars), body.as_ref()),
        _ => (None, f),
    };
    let obj = build(ctx, body, binding, &mut preds, &mut links)?;
    let obj = conjoin_equalities(obj, &preds, &links);
    let obj = match proj {
        Some(vars) => obj.project(vars.iter().map(Var::new).collect()),
        None => obj,
    };
    Ok(obj.canonicalize())
}

/// Instantiate the two sides of an entailment predicate `φ |= ψ` and decide
/// it. The implicit equalities are derived from the references of *both*
/// sides and conjoined to the left one (they are context, so
/// `Γ ∧ φ |= ψ`).
///
/// Variable spaces are unified **by name** (the paper's `(C(p,q) |= p=0)`),
/// except when the two sides' variable sets are disjoint with equal arity —
/// then they are aligned **positionally** (the paper's bare `(U |= X)` over
/// an `extent` and a `Region`, whose schema names differ).
pub(crate) fn entails(
    ctx: &Ctx<'_>,
    f1: &Formula,
    f2: &Formula,
    binding: &Binding,
) -> Result<bool, LyricError> {
    let mut preds: Vec<ResolvedPred> = Vec::new();
    let mut links: Vec<ScopeLink> = binding.links.clone();
    let lhs = build(ctx, strip_proj(f1), binding, &mut preds, &mut links)?;
    let split = preds.len();
    let rhs = build(ctx, strip_proj(f2), binding, &mut preds, &mut links)?;
    let eqs = implicit_equalities(&preds, &links);
    let _ = split;
    let lhs = conjoin_atoms(lhs, eqs);

    let lf: BTreeSet<&Var> = lhs.free().iter().collect();
    let rf: BTreeSet<&Var> = rhs.free().iter().collect();
    if !rf.is_empty() && lf.is_disjoint(&rf) && lhs.arity() == rhs.arity() {
        // Positional alignment.
        Ok(lhs.implies(&rhs))
    } else {
        // Nominal: lift both sides to the union variable space.
        let mut union: Vec<Var> = lhs.free().to_vec();
        for v in rhs.free() {
            if !union.contains(v) {
                union.push(v.clone());
            }
        }
        let l = lhs.project(union.clone());
        let r = rhs.project(union);
        Ok(l.implies(&r))
    }
}

/// Projections on entailment operands only rebind variables; entailment is
/// evaluated over the full variable space (§4.2 quantifies over all free
/// variables of both sides), so the outer projection is transparent here.
fn strip_proj(f: &Formula) -> &Formula {
    match f {
        Formula::Proj { body, .. } => strip_proj(body),
        _ => f,
    }
}

fn conjoin_equalities(obj: CstObject, preds: &[ResolvedPred], links: &[ScopeLink]) -> CstObject {
    conjoin_atoms(obj, implicit_equalities(preds, links))
}

fn conjoin_atoms(obj: CstObject, atoms: Vec<Atom>) -> CstObject {
    if atoms.is_empty() {
        return obj;
    }
    let free: Vec<Var> = atoms
        .iter()
        .flat_map(|a| a.vars())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    obj.and(&CstObject::from_conjunction(free, Conjunction::of(atoms)))
}

/// Recursive construction. `preds` and `links` accumulate the CST
/// references and renaming facts used for implicit-equality derivation.
fn build(
    ctx: &Ctx<'_>,
    f: &Formula,
    binding: &Binding,
    preds: &mut Vec<ResolvedPred>,
    links: &mut Vec<ScopeLink>,
) -> Result<CstObject, LyricError> {
    match f {
        Formula::And(a, b) => {
            let l = build(ctx, a, binding, preds, links)?;
            let r = build(ctx, b, binding, preds, links)?;
            Ok(l.and(&r))
        }
        Formula::Or(a, b) => {
            let l = build(ctx, a, binding, preds, links)?;
            let r = build(ctx, b, binding, preds, links)?;
            Ok(l.or(&r))
        }
        Formula::Not(a) => {
            let inner = build(ctx, a, binding, preds, links)?;
            Ok(inner.negate()?)
        }
        Formula::Proj { vars, body, .. } => {
            // Nested projection: lazy re-binding (see the module docs of
            // `lyric_constraint::cst_object`); equality injection happens
            // once at the root.
            let inner = build(ctx, body, binding, preds, links)?;
            Ok(inner.project(vars.iter().map(Var::new).collect()))
        }
        Formula::Pred { path, vars } => {
            let (object, owner, declared) = resolve_cst_path(ctx, path, binding, links)?;
            let query_vars: Vec<Var> = match vars {
                Some(vs) => {
                    if vs.len() != object.arity() {
                        return Err(LyricError::DimensionMismatch {
                            expected: object.arity(),
                            got: vs.len(),
                            what: format!("CST reference {}", display_path(path)),
                        });
                    }
                    vs.iter().map(Var::new).collect()
                }
                // "If the variables are not specified, they are simply
                // copied from the schema" (§4.2).
                None => declared.clone(),
            };
            let aligned = object.align_to(&query_vars);
            preds.push(ResolvedPred {
                query_vars,
                owner,
                declared,
            });
            Ok(aligned)
        }
        Formula::Chain { first, rest, .. } => {
            let mut atoms = Vec::new();
            let mut prev = arith_to_linexpr(ctx, first, binding)?;
            for (op, next) in rest {
                let rhs = arith_to_linexpr(ctx, next, binding)?;
                let relop = match op {
                    CRelOp::Eq => RelOp::Eq,
                    CRelOp::Neq => RelOp::Neq,
                    CRelOp::Le => RelOp::Le,
                    CRelOp::Lt => RelOp::Lt,
                    CRelOp::Ge => RelOp::Ge,
                    CRelOp::Gt => RelOp::Gt,
                };
                atoms.push(Atom::new(prev.clone(), relop, rhs.clone()));
                prev = rhs;
            }
            let conj = Conjunction::of(atoms);
            let free: Vec<Var> = conj.vars().into_iter().collect();
            Ok(CstObject::from_conjunction(free, conj))
        }
    }
}

/// Resolve a CST-object reference path: the stored object, its owner's
/// scope, and the attribute's declared variable list.
fn resolve_cst_path(
    ctx: &Ctx<'_>,
    path: &crate::ast::PathExpr,
    binding: &Binding,
    links: &mut Vec<ScopeLink>,
) -> Result<(CstObject, crate::scope::ScopeKey, Vec<Var>), LyricError> {
    let hits = eval_path(ctx, path, binding)?;
    let mut resolved: Option<(CstObject, crate::scope::ScopeKey, Vec<Var>)> = None;
    for hit in hits {
        for link in hit.binding.links {
            if !links.contains(&link) {
                links.push(link);
            }
        }
        let obj = hit
            .value
            .as_cst()
            .ok_or_else(|| {
                LyricError::type_error(format!("{} is not a constraint object", display_path(path)))
            })?
            .clone();
        let (owner, declared) = match hit.cst_info {
            Some(info) => info,
            None => (hit.scope.clone(), obj.free().to_vec()),
        };
        match &resolved {
            None => resolved = Some((obj, owner, declared)),
            Some((prev, ..)) if *prev == obj => {}
            Some(_) => {
                return Err(LyricError::type_error(format!(
                    "ambiguous CST reference {} (multiple values)",
                    display_path(path)
                )))
            }
        }
    }
    resolved.ok_or_else(|| {
        LyricError::type_error(format!(
            "CST reference {} has no value under the current binding",
            display_path(path)
        ))
    })
}

/// Translate pseudo-linear arithmetic to an exact linear expression,
/// resolving path constants against the binding.
pub(crate) fn arith_to_linexpr(
    ctx: &Ctx<'_>,
    a: &Arith,
    binding: &Binding,
) -> Result<LinExpr, LyricError> {
    match a {
        Arith::Num(n) => Ok(LinExpr::constant(n.clone())),
        Arith::Var(name) => {
            // A FROM-bound variable holding a numeric oid is a constant;
            // anything else that is bound is a type error; unbound names
            // are constraint variables.
            match binding.get(name) {
                Some(oid) => match oid.as_rational() {
                    Some(r) => Ok(LinExpr::constant(r)),
                    None => Err(LyricError::type_error(format!(
                        "variable {name} is bound to non-numeric {oid} inside arithmetic"
                    ))),
                },
                None => Ok(LinExpr::var(Var::new(name))),
            }
        }
        Arith::PathConst(p) => {
            let hits = eval_path(ctx, p, binding)?;
            let mut value: Option<Rational> = None;
            for hit in hits {
                let r = hit.value.as_rational().ok_or_else(|| {
                    LyricError::type_error(format!(
                        "{} does not evaluate to a numeric constant",
                        display_path(p)
                    ))
                })?;
                match &value {
                    None => value = Some(r),
                    Some(prev) if *prev == r => {}
                    Some(_) => {
                        return Err(LyricError::type_error(format!(
                            "ambiguous numeric path {}",
                            display_path(p)
                        )))
                    }
                }
            }
            value
                .map(LinExpr::constant)
                .ok_or_else(|| LyricError::type_error(format!("{} has no value", display_path(p))))
        }
        Arith::Add(x, y) => {
            Ok(&arith_to_linexpr(ctx, x, binding)? + &arith_to_linexpr(ctx, y, binding)?)
        }
        Arith::Sub(x, y) => {
            Ok(&arith_to_linexpr(ctx, x, binding)? - &arith_to_linexpr(ctx, y, binding)?)
        }
        Arith::Neg(x) => Ok(-&arith_to_linexpr(ctx, x, binding)?),
        Arith::Mul(x, y) => {
            let l = arith_to_linexpr(ctx, x, binding)?;
            let r = arith_to_linexpr(ctx, y, binding)?;
            if l.is_constant() {
                Ok(r.scale(l.constant_term()))
            } else if r.is_constant() {
                Ok(l.scale(r.constant_term()))
            } else {
                Err(LyricError::type_error(
                    "nonlinear product of two non-constant expressions",
                ))
            }
        }
    }
}

pub(crate) fn display_path(p: &crate::ast::PathExpr) -> String {
    use crate::ast::{OidLit, Selector};
    fn sel(s: &Selector) -> String {
        match s {
            Selector::Var(v) => v.clone(),
            Selector::Lit(OidLit::Named(n)) => n.clone(),
            Selector::Lit(OidLit::Int(i)) => i.to_string(),
            Selector::Lit(OidLit::Str(s)) => format!("'{s}'"),
            Selector::Lit(OidLit::Bool(b)) => b.to_string(),
        }
    }
    let mut out = sel(&p.root);
    for step in &p.steps {
        out.push('.');
        out.push_str(&step.attr);
        if let Some(s) = &step.selector {
            out.push('[');
            out.push_str(&sel(s));
            out.push(']');
        }
    }
    out
}
