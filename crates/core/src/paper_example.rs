//! The paper's running example: the office-design schema of **Figure 1**
//! and the `my_desk` instance of **Figure 2**.
//!
//! The schema (two-dimensional world, §2.1):
//!
//! ```text
//! Object_In_Room           inv_number : string
//!                          location   : CST(x,y)
//!                          catalog_object : (x,y) → Office_Object
//! Office_Object(x,y)       name : string,  color : Color
//!                          extent      : CST(w,z)
//!                          translation : CST(w,z,x,y,u,v)
//! Desk ⊑ Office_Object     drawer_center : CST(p,q)
//!                          drawer : (p,q) → Drawer
//! File_Cabinet ⊑ Office_Object
//!                          drawer_center* : CST(p1,q1)   (set-valued)
//!                          drawer : (p1,q1) → Drawer
//! Drawer(x,y)              extent      : CST(w,z)
//!                          translation : CST(w,z,x,y,u,v)
//! ```
//!
//! The instance (Figure 2):
//!
//! ```text
//! my_desk.inv_number        = '22-354'
//! my_desk.location          = ((x,y) | x = 6 ∧ y = 4)
//! my_desk.catalog_object[standard_desk]
//! standard_desk.name        = 'standard desk'      color = 'red'
//! standard_desk.extent      = ((w,z) | −4 ≤ w ≤ 4 ∧ −2 ≤ z ≤ 2)
//! standard_desk.translation = ((w,z,x,y,u,v) | u = x+w ∧ v = y+z)
//! standard_desk.drawer_center = ((p,q) | p = −2 ∧ −2 ≤ q ≤ 0)
//! standard_desk.drawer[standard_drawer]
//! standard_drawer.extent    = ((w,z) | −1 ≤ w ≤ 1 ∧ −1 ≤ z ≤ 1)
//! standard_drawer.translation = ((w,z,x,y,u,v) | u = x+w ∧ v = y+z)
//! ```
//!
//! A file cabinet (with a *set* of drawer centers, exercising the
//! set-valued `drawer_center*` of Figure 1) is added alongside.

use lyric_arith::Rational;
use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
use lyric_oodb::{AttrDef, AttrTarget, ClassDef, Database, Oid, Schema, Value};

fn v(n: &str) -> Var {
    Var::new(n)
}

fn ev(n: &str) -> LinExpr {
    LinExpr::var(Var::new(n))
}

fn c(n: i64) -> LinExpr {
    LinExpr::constant(Rational::from_int(n))
}

/// An axis-aligned box `x0 ≤ vx ≤ x1 ∧ y0 ≤ vy ≤ y1`.
pub fn box2(vx: &str, vy: &str, x0: i64, x1: i64, y0: i64, y1: i64) -> CstObject {
    CstObject::from_conjunction(
        vec![v(vx), v(vy)],
        Conjunction::of([
            Atom::ge(ev(vx), c(x0)),
            Atom::le(ev(vx), c(x1)),
            Atom::ge(ev(vy), c(y0)),
            Atom::le(ev(vy), c(y1)),
        ]),
    )
}

/// The coordinate-system translation of Figures 1–2:
/// `((w,z,x,y,u,v) | u = x + w ∧ v = y + z)` — local point `(w,z)`, origin
/// `(x,y)`, global point `(u,v)`.
pub fn translation2() -> CstObject {
    CstObject::from_conjunction(
        vec![v("w"), v("z"), v("x"), v("y"), v("u"), v("v")],
        Conjunction::of([
            Atom::eq(ev("u"), ev("x") + ev("w")),
            Atom::eq(ev("v"), ev("y") + ev("z")),
        ]),
    )
}

/// A single 2-D point as a constraint object.
pub fn point2(vx: &str, vy: &str, x: i64, y: i64) -> CstObject {
    CstObject::point(
        vec![v(vx), v(vy)],
        &[Rational::from_int(x), Rational::from_int(y)],
    )
}

/// The Figure 1 schema.
pub fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_class(ClassDef::new("Color")).expect("fresh schema");
    s.add_class(
        ClassDef::new("Object_In_Room")
            .attr(AttrDef::scalar("inv_number", AttrTarget::class("string")))
            .attr(AttrDef::scalar("location", AttrTarget::cst(["x", "y"])))
            .attr(AttrDef::scalar(
                "catalog_object",
                AttrTarget::class_renamed("Office_Object", vec![v("x"), v("y")]),
            )),
    )
    .expect("fresh schema");
    s.add_class(
        ClassDef::new("Office_Object")
            .interface(["x", "y"])
            .attr(AttrDef::scalar("name", AttrTarget::class("string")))
            .attr(AttrDef::scalar("color", AttrTarget::class("Color")))
            .attr(AttrDef::scalar("extent", AttrTarget::cst(["w", "z"])))
            .attr(AttrDef::scalar(
                "translation",
                AttrTarget::cst(["w", "z", "x", "y", "u", "v"]),
            )),
    )
    .expect("fresh schema");
    s.add_class(
        ClassDef::new("Drawer")
            .interface(["x", "y"])
            .attr(AttrDef::scalar("extent", AttrTarget::cst(["w", "z"])))
            .attr(AttrDef::scalar(
                "translation",
                AttrTarget::cst(["w", "z", "x", "y", "u", "v"]),
            )),
    )
    .expect("fresh schema");
    s.add_class(
        ClassDef::new("Desk")
            .is_a("Office_Object")
            .attr(AttrDef::scalar(
                "drawer_center",
                AttrTarget::cst(["p", "q"]),
            ))
            .attr(AttrDef::scalar(
                "drawer",
                AttrTarget::class_renamed("Drawer", vec![v("p"), v("q")]),
            )),
    )
    .expect("fresh schema");
    s.add_class(
        ClassDef::new("File_Cabinet")
            .is_a("Office_Object")
            .attr(AttrDef::set("drawer_center", AttrTarget::cst(["p1", "q1"])))
            .attr(AttrDef::scalar(
                "drawer",
                AttrTarget::class_renamed("Drawer", vec![v("p1"), v("q1")]),
            )),
    )
    .expect("fresh schema");
    // The Region CST class used by the §4.1 view example.
    s.add_class(ClassDef::new("Region").cst_class(2))
        .expect("fresh schema");
    s
}

/// The Figure 2 database: `my_desk` (plus a file cabinet).
pub fn database() -> Database {
    let mut db = Database::new(schema()).expect("schema validates");
    for color in ["red", "blue", "grey"] {
        db.declare_instance("Color", Oid::str(color))
            .expect("Color exists");
    }

    // Catalog objects.
    db.insert(
        Oid::named("standard_drawer"),
        "Drawer",
        [
            (
                "extent",
                Value::Scalar(Oid::cst(box2("w", "z", -1, 1, -1, 1))),
            ),
            ("translation", Value::Scalar(Oid::cst(translation2()))),
        ],
    )
    .expect("valid insert");
    db.insert(
        Oid::named("standard_desk"),
        "Desk",
        [
            ("name", Value::Scalar(Oid::str("standard desk"))),
            ("color", Value::Scalar(Oid::str("red"))),
            (
                "extent",
                Value::Scalar(Oid::cst(box2("w", "z", -4, 4, -2, 2))),
            ),
            ("translation", Value::Scalar(Oid::cst(translation2()))),
            (
                "drawer_center",
                Value::Scalar(Oid::cst(CstObject::from_conjunction(
                    vec![v("p"), v("q")],
                    Conjunction::of([
                        Atom::eq(ev("p"), c(-2)),
                        Atom::ge(ev("q"), c(-2)),
                        Atom::le(ev("q"), c(0)),
                    ]),
                ))),
            ),
            ("drawer", Value::Scalar(Oid::named("standard_drawer"))),
        ],
    )
    .expect("valid insert");

    // In-room instance.
    db.insert(
        Oid::named("my_desk"),
        "Object_In_Room",
        [
            ("inv_number", Value::Scalar(Oid::str("22-354"))),
            ("location", Value::Scalar(Oid::cst(point2("x", "y", 6, 4)))),
            ("catalog_object", Value::Scalar(Oid::named("standard_desk"))),
        ],
    )
    .expect("valid insert");

    // A file cabinet with two drawers sharing one catalog drawer shape and
    // a *set* of possible drawer centers.
    db.insert(
        Oid::named("cabinet_drawer"),
        "Drawer",
        [
            (
                "extent",
                Value::Scalar(Oid::cst(box2("w", "z", -1, 1, -1, 1))),
            ),
            ("translation", Value::Scalar(Oid::cst(translation2()))),
        ],
    )
    .expect("valid insert");
    let center = |y0: i64, y1: i64| {
        Oid::cst(CstObject::from_conjunction(
            vec![v("p1"), v("q1")],
            Conjunction::of([
                Atom::eq(ev("p1"), c(0)),
                Atom::ge(ev("q1"), c(y0)),
                Atom::le(ev("q1"), c(y1)),
            ]),
        ))
    };
    db.insert(
        Oid::named("standard_cabinet"),
        "File_Cabinet",
        [
            ("name", Value::Scalar(Oid::str("file cabinet"))),
            ("color", Value::Scalar(Oid::str("grey"))),
            (
                "extent",
                Value::Scalar(Oid::cst(box2("w", "z", -1, 1, -2, 2))),
            ),
            ("translation", Value::Scalar(Oid::cst(translation2()))),
            ("drawer_center", Value::set([center(-2, -1), center(1, 2)])),
            ("drawer", Value::Scalar(Oid::named("cabinet_drawer"))),
        ],
    )
    .expect("valid insert");
    db.insert(
        Oid::named("my_cabinet"),
        "Object_In_Room",
        [
            ("inv_number", Value::Scalar(Oid::str("22-355"))),
            ("location", Value::Scalar(Oid::cst(point2("x", "y", 15, 8)))),
            (
                "catalog_object",
                Value::Scalar(Oid::named("standard_cabinet")),
            ),
        ],
    )
    .expect("valid insert");

    db.validate_references().expect("no dangling references");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_builds_and_validates() {
        let db = database();
        assert_eq!(db.extent("Object_In_Room").len(), 2);
        assert_eq!(db.extent("Office_Object").len(), 2); // desk + cabinet
        assert_eq!(db.extent("Desk").len(), 1);
        assert_eq!(db.extent("Drawer").len(), 2);
    }

    #[test]
    fn figure2_values() {
        let db = database();
        let desk = Oid::named("standard_desk");
        let extent = db
            .attr(&desk, "extent")
            .unwrap()
            .as_scalar()
            .unwrap()
            .as_cst()
            .unwrap();
        assert!(extent.contains_point(&[4.into(), 2.into()]));
        assert!(!extent.contains_point(&[5.into(), 0.into()]));
        let dc = db
            .attr(&desk, "drawer_center")
            .unwrap()
            .as_scalar()
            .unwrap()
            .as_cst()
            .unwrap();
        assert!(dc.contains_point(&[Rational::from_int(-2), Rational::from_int(-1)]));
        assert!(!dc.contains_point(&[Rational::from_int(0), Rational::from_int(-1)]));
    }

    #[test]
    fn set_valued_drawer_centers() {
        let db = database();
        let cab = Oid::named("standard_cabinet");
        match db.attr(&cab, "drawer_center").unwrap() {
            Value::Set(s) => assert_eq!(s.len(), 2),
            other => panic!("expected set, got {other}"),
        }
    }
}
