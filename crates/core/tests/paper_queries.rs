//! End-to-end evaluation of every worked query of §4.1 of the paper,
//! against the Figure 2 instance, checking the answers the paper prints.

use lyric::{execute, paper_example};
use lyric_arith::Rational;
use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
use lyric_oodb::{Database, Oid};

fn r(n: i64) -> Rational {
    Rational::from_int(n)
}

fn db() -> Database {
    paper_example::database()
}

/// §4.1 query 1: retrieve drawer extents of desks as logical oids.
#[test]
fn q1_drawer_extents() {
    let mut db = db();
    let res = execute(&mut db, "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]").unwrap();
    assert_eq!(res.rows.len(), 1);
    let extent = res.rows[0][0].as_cst().unwrap();
    // ((w,z) | −1 ≤ w ≤ 1 ∧ −1 ≤ z ≤ 1)
    let expected = paper_example::box2("w", "z", -1, 1, -1, 1);
    assert!(extent.denotes_same(&expected));
}

/// §4.1 query 2 (both forms): the catalog-object extent in room
/// coordinates with center at (6,4). The paper's printed simplification is
/// ((u,v) | 2 ≤ u ≤ 10 ∧ 2 ≤ v ≤ 6) for the standard desk.
#[test]
fn q2_extent_in_global_coordinates_explicit_vars() {
    let mut db = db();
    let res = execute(
        &mut db,
        "SELECT CO, ((u,v) | E(w,z) AND D(w,z,x,y,u,v) AND x = 6 AND y = 4)
         FROM Office_Object CO
         WHERE CO.extent[E] AND CO.translation[D]",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 2); // desk + cabinet
    let desk_row = res
        .rows
        .iter()
        .find(|row| row[0] == Oid::named("standard_desk"))
        .expect("desk row present");
    let got = desk_row[1].as_cst().unwrap();
    let expected = paper_example::box2("u", "v", 2, 10, 2, 6);
    assert!(got.denotes_same(&expected), "got {got}");
    // And the cheap canonical form actually discharges all quantifiers,
    // as the paper's printed answer does.
    assert!(
        !got.has_bound_vars(),
        "expected fully simplified form, got {got}"
    );
}

#[test]
fn q2_extent_in_global_coordinates_schema_copied_vars() {
    // The paper's "shorter form using the implicit equation introduced by
    // variable names": E and D with variables copied from the schema.
    let mut db = db();
    let res = execute(
        &mut db,
        "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
         FROM Office_Object CO
         WHERE CO.extent[E] AND CO.translation[D]",
    )
    .unwrap();
    let desk_row = res
        .rows
        .iter()
        .find(|row| row[0] == Oid::named("standard_desk"))
        .unwrap();
    let got = desk_row[1].as_cst().unwrap();
    assert!(
        got.denotes_same(&paper_example::box2("u", "v", 2, 10, 2, 6)),
        "got {got}"
    );
}

/// §4.1 query 3: for each desk whose center may appear in the left upper
/// quarter of a 20×10 room, the area its drawer can occupy in room
/// coordinates (any drawer position).
#[test]
fn q3_drawer_sweep_area() {
    let mut db = db();
    let res = execute(
        &mut db,
        "SELECT O, ((u,v) | D(w,z,x,y,u,v) AND DD(w1,z1,x1,y1,u1,v1) AND w = u1 AND z = v1
                    AND DC(p,q) AND DE(w1,z1) AND L(x,y))
         FROM Object_In_Room O, Desk DSK
         WHERE O.location[L] AND O.catalog_object[DSK]
           AND (L(x,y) AND 0 <= x AND x <= 10 AND 5 <= y AND y <= 10)
           AND DSK.translation[D] AND DSK.drawer_center[DC]
           AND DSK.drawer.translation[DD] AND DSK.drawer.extent[DE]",
    )
    .unwrap();
    // my_desk is at (6,4): NOT in the upper-left quarter (y >= 5 fails);
    // with its location there are no matching rows.
    assert_eq!(res.rows.len(), 0);

    // Move the desk into the upper-left quarter and re-run.
    let mut db2 = db;
    db2.set_attr(
        &Oid::named("my_desk"),
        "location",
        lyric_oodb::Value::Scalar(Oid::cst(paper_example::point2("x", "y", 6, 6))),
    )
    .unwrap();
    let res = execute(
        &mut db2,
        "SELECT O, ((u,v) | D(w,z,x,y,u,v) AND DD(w1,z1,x1,y1,u1,v1) AND w = u1 AND z = v1
                    AND DC(p,q) AND DE(w1,z1) AND L(x,y))
         FROM Object_In_Room O, Desk DSK
         WHERE O.location[L] AND O.catalog_object[DSK]
           AND (L(x,y) AND 0 <= x AND x <= 10 AND 5 <= y AND y <= 10)
           AND DSK.translation[D] AND DSK.drawer_center[DC]
           AND DSK.drawer.translation[DD] AND DSK.drawer.extent[DE]",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 1);
    let area = res.rows[0][1].as_cst().unwrap();
    // Work out the expected region by hand. Desk at (x,y) = (6,6).
    // Drawer center (p,q): p = −2, −2 ≤ q ≤ 0 (in desk coordinates);
    // implicit equalities give (x1,y1) = (p,q) — the drawer's origin in
    // desk coordinates. Drawer extent −1 ≤ w1,z1 ≤ 1, so in desk
    // coordinates the drawer occupies u1 ∈ [p−1, p+1] = [−3,−1],
    // v1 ∈ [q−1, q+1] = [−3,1]. The desk translation with (w,z)=(u1,v1)
    // maps to room coordinates: u ∈ [3,5], v ∈ [3,7].
    let expected = paper_example::box2("u", "v", 3, 5, 3, 7);
    assert!(area.denotes_same(&expected), "got {area}");
}

/// §4.1 query 4: red desks with a drawer in the middle of the desk, and
/// their extent above the 45-degree line through the center.
#[test]
fn q4_entailment_middle_drawer() {
    let mut db = db();
    // The standard desk's drawer center has p = −2, so (C(p,q) |= p = 0)
    // is false and no rows come back.
    let res = execute(
        &mut db,
        "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
         FROM Desk DSK
         WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 0);

    // Center the drawer; now the entailment holds and the answer is the
    // upper-left triangle of the drawer extent.
    db.set_attr(
        &Oid::named("standard_desk"),
        "drawer_center",
        lyric_oodb::Value::Scalar(Oid::cst(CstObject::from_conjunction(
            vec![Var::new("p"), Var::new("q")],
            Conjunction::of([
                Atom::eq(LinExpr::var(Var::new("p")), LinExpr::from(0)),
                Atom::ge(LinExpr::var(Var::new("q")), LinExpr::from(-2)),
                Atom::le(LinExpr::var(Var::new("q")), LinExpr::from(0)),
            ]),
        ))),
    )
    .unwrap();
    let res = execute(
        &mut db,
        "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
         FROM Desk DSK
         WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 1);
    let tri = res.rows[0][1].as_cst().unwrap();
    assert!(tri.contains_point(&[r(-1), r(1)]));
    assert!(tri.contains_point(&[r(0), r(0)]));
    assert!(!tri.contains_point(&[r(1), r(0)])); // below the diagonal
    assert!(!tri.contains_point(&[r(-2), r(2)])); // outside the extent
}

/// §4.1 query 5: desks whose drawer never touches the walls of the 20×10
/// room (satisfiability over the joint drawer placement).
#[test]
fn q5_drawer_inside_room() {
    let mut db = db();
    // The paper's query asks for a placement of the drawer strictly inside
    // the room. my_desk sits at (6,4); its drawer sweeps u ∈ [3,5],
    // v ∈ [1,5] (drawer center p=−2, q ∈ [−2,0]) — strictly inside.
    let res = execute(
        &mut db,
        "SELECT DSK
         FROM Object_In_Room O, Desk DSK
         WHERE O.catalog_object[DSK] AND O.location[L]
           AND DSK.drawer_center[C] AND DSK.translation[D]
           AND DSK.drawer.extent[DRE] AND DSK.drawer.translation[DRD]
           AND (C(p,q) AND DRE(w1,z1) AND DRD(w1,z1,x1,y1,u1,v1)
                AND D(w,z,x,y,u,v) AND L(x,y) AND w = u1 AND z = v1
                AND 0 < u AND u < 20 AND 0 < v AND v < 10)",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 1);
    assert_eq!(res.rows[0][0], Oid::named("standard_desk"));

    // Move the desk flush against the origin: the drawer now necessarily
    // crosses the wall region boundary? No — satisfiability asks for SOME
    // placement; put the desk far outside so no placement is inside.
    db.set_attr(
        &Oid::named("my_desk"),
        "location",
        lyric_oodb::Value::Scalar(Oid::cst(paper_example::point2("x", "y", 100, 100))),
    )
    .unwrap();
    let res = execute(
        &mut db,
        "SELECT DSK
         FROM Object_In_Room O, Desk DSK
         WHERE O.catalog_object[DSK] AND O.location[L]
           AND DSK.drawer_center[C] AND DSK.translation[D]
           AND DSK.drawer.extent[DRE] AND DSK.drawer.translation[DRD]
           AND (C(p,q) AND DRE(w1,z1) AND DRD(w1,z1,x1,y1,u1,v1)
                AND D(w,z,x,y,u,v) AND L(x,y) AND w = u1 AND z = v1
                AND 0 < u AND u < 20 AND 0 < v AND v < 10)",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 0);
}

/// §4.1 query 6 (prose-corrected): classify Object_In_Room instances by
/// the Region containing their catalog extent. The paper prints
/// `SELECT X`, but the prose asks to classify the *objects*; we select the
/// object and note the typo (see DESIGN.md).
#[test]
fn q6_region_classification_view() {
    let mut db = db();
    // Two regions: the west half and the east half of the room.
    let west = paper_example::box2("u", "v", 0, 10, 0, 10);
    let east = paper_example::box2("u", "v", 10, 20, 0, 10);
    db.declare_instance("Region", Oid::cst(west.clone()))
        .unwrap();
    db.declare_instance("Region", Oid::cst(east.clone()))
        .unwrap();

    // Classify by where the object's *swept extent in room coordinates*
    // lies: compute it inline and test containment against the region.
    let res = execute(
        &mut db,
        "CREATE VIEW X AS SUBCLASS OF Object_In_Room
         SELECT Y
         FROM Object_In_Room Y, Region X
         WHERE Y.catalog_object[CO] AND Y.location[L] AND CO.extent[E] AND CO.translation[D]
           AND (((u,v) | E AND D AND L(x,y)) |= X(u,v))",
    )
    .unwrap();
    // my_desk at (6,4) extends u ∈ [2,10] — inside west;
    // my_cabinet at (15,8) extends u ∈ [14,16], v ∈ [6,10] — inside east.
    assert_eq!(res.rows.len(), 2);
    let west_class = Oid::cst(west).to_string();
    let east_class = Oid::cst(east).to_string();
    assert!(db.is_instance(&Oid::named("my_desk"), &west_class));
    assert!(!db.is_instance(&Oid::named("my_desk"), &east_class));
    assert!(db.is_instance(&Oid::named("my_cabinet"), &east_class));
    // The view classes are subclasses of Object_In_Room.
    assert!(db.schema().is_subclass(&west_class, "Object_In_Room"));
}

/// §2.2's Overlap view: pairs of catalog objects occupying the same volume,
/// with OID FUNCTION OF and SIGNATURE.
#[test]
fn overlap_view_with_oid_function() {
    let mut db = db();
    // Give the room a second desk overlapping the first.
    db.insert(
        Oid::named("desk2"),
        "Object_In_Room",
        [
            ("inv_number", lyric_oodb::Value::Scalar(Oid::str("22-356"))),
            (
                "location",
                lyric_oodb::Value::Scalar(Oid::cst(paper_example::point2("x", "y", 8, 4))),
            ),
            (
                "catalog_object",
                lyric_oodb::Value::Scalar(Oid::named("standard_desk")),
            ),
        ],
    )
    .unwrap();
    // Overlap of room objects: their global extents intersect.
    let res = execute(
        &mut db,
        "CREATE VIEW Overlap AS SUBCLASS OF object
         SELECT first = X, second = Y
         SIGNATURE first => Object_In_Room, second => Object_In_Room
         FROM Object_In_Room X, Object_In_Room Y
         OID FUNCTION OF X, Y
         WHERE X.catalog_object[CX] AND Y.catalog_object[CY]
           AND X.location[LX] AND Y.location[LY]
           AND CX.extent[EX] AND CX.translation[DX]
           AND CY.extent[EY] AND CY.translation[DY]
           AND X != Y
           AND (EX(w,z) AND DX(w,z,x,y,u,v) AND LX(x,y)
                AND EY(w2,z2) AND DY(w2,z2,x2,y2,u,v) AND LY(x2,y2))",
    )
    .unwrap();
    // my_desk at (6,4) spans u ∈ [2,10]; desk2 at (8,4) spans [4,12]:
    // they overlap (symmetrically → two pairs). The cabinet at (15,8)
    // spans u ∈ [14,16] and overlaps neither.
    assert_eq!(res.rows.len(), 2);
    let members = db.extent("Overlap");
    assert_eq!(members.len(), 2);
    // The view objects have the declared attributes.
    let first = db.attr(&members[0], "first").unwrap();
    assert!(matches!(first, lyric_oodb::Value::Scalar(_)));
}

/// §1.2's "cut at height 1/2": slice the desk extent at z = 1/2 via a
/// projection formula with the height pinned.
#[test]
fn cut_at_height() {
    let mut db = db();
    let res = execute(
        &mut db,
        "SELECT CO, ((w) | E(w,z) AND z = 0.5) FROM Desk CO WHERE CO.extent[E]",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 1);
    let cut = res.rows[0][1].as_cst().unwrap();
    assert!(cut.contains_point(&[r(4)]));
    assert!(!cut.contains_point(&[r(5)]));
}

/// MAX / MIN / MAX_POINT over a desk extent (§4.2 LP operators).
#[test]
fn lp_operators() {
    let mut db = db();
    let res = execute(
        &mut db,
        "SELECT MAX(w + z SUBJECT TO ((w,z) | E)), MIN(w SUBJECT TO ((w,z) | E)),
                MAX_POINT(w + z SUBJECT TO ((w,z) | E))
         FROM Desk D WHERE D.extent[E]",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 1);
    assert_eq!(res.rows[0][0], Oid::Rat(r(6))); // max w+z over the box = 4+2
    assert_eq!(res.rows[0][1], Oid::Rat(r(-4))); // min w
    let point = res.rows[0][2].as_cst().unwrap();
    assert!(point.contains_point(&[r(4), r(2)]));
}

/// Attribute variables (higher-order): find which attributes of the desk
/// hold CST objects equal to its extent.
#[test]
fn attribute_variables() {
    let mut db = db();
    let res = execute(&mut db, "SELECT A FROM Desk D WHERE D.A[V] AND D.extent[V]").unwrap();
    // Only `extent` holds that exact object.
    assert_eq!(res.rows.len(), 1);
    assert_eq!(res.rows[0][0], Oid::str("extent"));
}

/// Comparisons and set semantics of XSQL.
#[test]
fn xsql_comparisons() {
    let mut db = db();
    let res = execute(
        &mut db,
        "SELECT X.name FROM Office_Object X WHERE X.color = 'red'",
    )
    .unwrap();
    assert_eq!(res.rows, vec![vec![Oid::str("standard desk")]]);
    let res = execute(
        &mut db,
        "SELECT X FROM Office_Object X WHERE X.color != 'red'",
    )
    .unwrap();
    assert_eq!(res.rows, vec![vec![Oid::named("standard_cabinet")]]);
}

/// Set-valued attributes: the cabinet's drawer centers both show up as
/// paths.
#[test]
fn set_valued_paths() {
    let mut db = db();
    let res = execute(
        &mut db,
        "SELECT C FROM File_Cabinet F WHERE F.drawer_center[C]",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 2);
}

/// Every query result carries engine statistics: real LP work shows up as
/// pivots, and a repeated entailment answers from the memo cache.
#[test]
fn engine_stats_are_reported() {
    let mut db = db();
    let res = execute(
        &mut db,
        "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
         FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
    )
    .unwrap();
    assert!(
        res.stats.pivots > 0,
        "simplex work must be counted: {}",
        res.stats
    );
    assert!(res.stats.lp_runs > 0, "{}", res.stats);
    assert!(res.stats.sat_checks > 0, "{}", res.stats);

    // Two FROM bindings re-ask the same entailment: the second answer
    // must come from the cache.
    let res = execute(
        &mut db,
        "SELECT DSK FROM Desk DSK, Office_Object CO
         WHERE DSK.drawer_center[C] AND (C(p,q) |= q <= 0)",
    )
    .unwrap();
    assert!(res.stats.entailment_checks >= 2, "{}", res.stats);
    assert!(
        res.stats.cache_hits > 0,
        "repeated entailment must hit: {}",
        res.stats
    );
}

/// Unbound variables are reported, not silently false: `Y` is declared by
/// the bracket in the second conjunct but read by the first.
#[test]
fn unbound_variable_error() {
    let mut db = db();
    // Caught statically: the analyzer replays the left-to-right binding
    // order and sees `Y` read before the bracket can bind it.
    let src = "SELECT Y FROM Desk X WHERE Y.extent[E] AND X.drawer[Y]";
    let err = execute(&mut db, src).unwrap_err();
    assert!(
        matches!(&err, lyric::LyricError::Analysis(ds)
            if ds.iter().any(|d| d.code == "LYA003")),
        "{err}"
    );
    // The evaluator reports the same failure when analysis is skipped.
    let err = lyric::execute_unchecked(&mut db, src).unwrap_err();
    assert!(
        matches!(err, lyric::LyricError::UnboundVariable(_)),
        "{err}"
    );
    // An undeclared root identifier is a ground oid (XSQL): a name that
    // matches no object yields no paths, not an error.
    let res = execute(&mut db, "SELECT Z FROM Desk X WHERE nosuch.color[Z]").unwrap();
    assert!(res.rows.is_empty());
}
