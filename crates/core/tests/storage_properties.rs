//! Property tests for textual persistence: random databases round-trip
//! through `storage::save` / `storage::load` with identical schema,
//! extents, attribute values, and query answers.

use lyric::storage::{load, save};
use lyric_arith::Rational;
use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
use lyric_oodb::{AttrDef, AttrTarget, ClassDef, Database, Oid, Schema, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawItem {
    name_idx: usize,
    kind: usize,
    boxes: Vec<(i32, i32, i32, i32)>,
    tags: Vec<usize>,
}

const NAMES: &[&str] = &["alpha", "beta", "gamma", "delta"];
const KINDS: &[&str] = &["Widget", "Gadget"];

fn item_strategy() -> impl Strategy<Value = RawItem> {
    (
        0..NAMES.len(),
        0..KINDS.len(),
        proptest::collection::vec((-9..=0i32, 0..=9i32, -9..=0i32, 0..=9i32), 1..3),
        proptest::collection::vec(0..NAMES.len(), 0..3),
    )
        .prop_map(|(name_idx, kind, boxes, tags)| RawItem {
            name_idx,
            kind,
            boxes,
            tags,
        })
}

fn mk_region(boxes: &[(i32, i32, i32, i32)]) -> CstObject {
    let e = |n: &str| LinExpr::var(Var::new(n));
    let mut obj = CstObject::bottom(vec![Var::new("a"), Var::new("b")]);
    for &(x0, x1, y0, y1) in boxes {
        obj = obj.or(&CstObject::from_conjunction(
            vec![Var::new("a"), Var::new("b")],
            Conjunction::of([
                Atom::ge(e("a"), LinExpr::from(x0 as i64)),
                Atom::le(e("a"), LinExpr::from(x1 as i64)),
                Atom::ge(e("b"), LinExpr::from(y0 as i64)),
                Atom::le(e("b"), LinExpr::from(y1 as i64)),
            ]),
        ));
    }
    obj
}

fn build(items: &[RawItem]) -> Database {
    let mut schema = Schema::new();
    schema
        .add_class(
            ClassDef::new("Widget")
                .interface(["a", "b"])
                .attr(AttrDef::scalar("name", AttrTarget::class("string")))
                .attr(AttrDef::scalar("region", AttrTarget::cst(["a", "b"])))
                .attr(AttrDef::set("tags", AttrTarget::class("string"))),
        )
        .expect("fresh schema");
    schema
        .add_class(ClassDef::new("Gadget").is_a("Widget"))
        .expect("fresh schema");
    let mut db = Database::new(schema).expect("validates");
    for (i, item) in items.iter().enumerate() {
        db.insert(
            Oid::named(format!("item_{i}")),
            KINDS[item.kind],
            [
                ("name", Value::Scalar(Oid::str(NAMES[item.name_idx]))),
                ("region", Value::Scalar(Oid::cst(mk_region(&item.boxes)))),
                (
                    "tags",
                    Value::set(item.tags.iter().map(|&t| Oid::str(NAMES[t]))),
                ),
            ],
        )
        .expect("insert item");
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_databases_roundtrip(items in proptest::collection::vec(item_strategy(), 0..6)) {
        let db = build(&items);
        let text = save(&db).expect("serializes");
        let reloaded = load(&text).expect("parses back");

        // Schema identity.
        let names_a: Vec<&str> = db.schema().class_names().collect();
        let names_b: Vec<&str> = reloaded.schema().class_names().collect();
        prop_assert_eq!(&names_a, &names_b);
        for n in &names_a {
            prop_assert_eq!(db.schema().class(n), reloaded.schema().class(n));
        }
        // Extents and object data.
        for n in &names_a {
            prop_assert_eq!(db.extent(n), reloaded.extent(n));
        }
        let a: Vec<_> = db.objects().collect();
        let b: Vec<_> = reloaded.objects().collect();
        prop_assert_eq!(a, b);
        // Second save is byte-identical (canonical dump).
        prop_assert_eq!(text, save(&reloaded).expect("re-serializes"));
    }

    #[test]
    fn queries_survive_roundtrip(items in proptest::collection::vec(item_strategy(), 1..5),
                                 px in -9..=9i32, py in -9..=9i32) {
        let mut db = build(&items);
        let text = save(&db).expect("serializes");
        let mut reloaded = load(&text).expect("parses back");
        let q = format!(
            "SELECT W.name FROM Widget W WHERE W.region[R] AND (R(a,b) AND a = {px} AND b = {py})"
        );
        let before = lyric::execute(&mut db, &q).expect("query original");
        let after = lyric::execute(&mut reloaded, &q).expect("query reload");
        prop_assert_eq!(before, after);
        // Point-set semantics of every stored region is preserved.
        let p = [Rational::from_int(px as i64), Rational::from_int(py as i64)];
        for (oid, _) in db.objects() {
            let r1 = db.attr(oid, "region").expect("stored");
            let r2 = reloaded.attr(oid, "region").expect("stored");
            let (c1, c2) = (
                r1.as_scalar().expect("scalar").as_cst().expect("cst"),
                r2.as_scalar().expect("scalar").as_cst().expect("cst"),
            );
            prop_assert_eq!(c1.contains_point(&p), c2.contains_point(&p));
        }
    }
}
