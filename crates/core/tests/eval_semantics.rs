//! Evaluator-semantics edge cases beyond the paper's worked examples:
//! Boolean structure over bindings, set comparisons, attribute variables,
//! multi-valued SELECT items, and typed failure modes.

use lyric::paper_example::{box2, point2, translation2};
use lyric::{execute, paper_example, LyricError};
use lyric_oodb::{Database, Oid, Value};

fn db() -> Database {
    paper_example::database()
}

#[test]
fn or_unions_bindings() {
    let mut db = db();
    // Red or grey catalog objects: desk (red) and cabinet (grey).
    let res = execute(
        &mut db,
        "SELECT X FROM Office_Object X WHERE X.color = 'red' OR X.color = 'grey'",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 2);
    // OR with a binding branch: either the object has a drawer or it is
    // grey. Both branches match the cabinet — rows dedup.
    let res = execute(
        &mut db,
        "SELECT X FROM Office_Object X WHERE X.drawer[D] OR X.color = 'grey'",
    )
    .unwrap();
    // Desk (has drawer), cabinet (has drawer AND grey — deduplicated per
    // binding of X? The drawer binding differs, so dedup keys on (X, D)).
    // Selecting X only, rows dedup to 2.
    assert_eq!(res.rows.len(), 2);
}

#[test]
fn not_filters_without_binding() {
    let mut db = db();
    let res = execute(
        &mut db,
        "SELECT X FROM Office_Object X WHERE NOT X.color = 'red'",
    )
    .unwrap();
    assert_eq!(res.rows, vec![vec![Oid::named("standard_cabinet")]]);
    // Double negation.
    let res = execute(
        &mut db,
        "SELECT X FROM Office_Object X WHERE NOT NOT X.color = 'red'",
    )
    .unwrap();
    assert_eq!(res.rows, vec![vec![Oid::named("standard_desk")]]);
    // NOT over a path predicate: objects without a drawer.
    let res = execute(
        &mut db,
        "SELECT X FROM Office_Object X WHERE NOT X.drawer[D]",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 0); // both catalog objects have drawers
}

#[test]
fn contains_compares_value_sets() {
    let mut db = db();
    // The cabinet's set of drawer centers CONTAINS each single one.
    let res = execute(
        &mut db,
        "SELECT F FROM File_Cabinet F WHERE F.drawer_center CONTAINS F.drawer_center",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 1);
    // A set does not contain a disjoint literal.
    let res = execute(
        &mut db,
        "SELECT F FROM File_Cabinet F WHERE F.name CONTAINS 'nope'",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 0);
}

#[test]
fn multi_valued_select_item_produces_row_per_value() {
    let mut db = db();
    // Selecting the (set-valued) drawer_center directly: one row per
    // member.
    let res = execute(&mut db, "SELECT F, F.drawer_center FROM File_Cabinet F").unwrap();
    assert_eq!(res.rows.len(), 2);
    assert!(res
        .rows
        .iter()
        .all(|r| r[0] == Oid::named("standard_cabinet")));
}

#[test]
fn attribute_variable_enumerates_attributes() {
    let mut db = db();
    // Attribute variables range over stored attributes; selecting the
    // variable yields the attribute names (as string oids).
    let res = execute(&mut db, "SELECT A FROM Drawer D WHERE D.A[V]").unwrap();
    let mut names: Vec<String> = res
        .rows
        .iter()
        .map(|r| r[0].as_str().expect("attr name").to_string())
        .collect();
    names.sort();
    names.dedup();
    assert_eq!(names, vec!["extent".to_string(), "translation".to_string()]);
}

#[test]
fn attribute_variable_dimension_error_is_reported() {
    let mut db = db();
    let err = execute(
        &mut db,
        "SELECT A FROM Drawer D WHERE D.A[V] AND (V(a,b) AND a = 0)",
    )
    .unwrap_err();
    assert!(matches!(err, LyricError::DimensionMismatch { .. }), "{err}");
}

#[test]
fn ordered_comparison_requires_numbers() {
    let mut db = db();
    // Caught statically: `name` is a string attribute.
    let src = "SELECT X FROM Office_Object X WHERE X.name < 3";
    let err = execute(&mut db, src).unwrap_err();
    assert!(
        matches!(&err, LyricError::Analysis(ds) if ds.iter().any(|d| d.code == "LYA011")),
        "{err}"
    );
    // The evaluator reports the same failure when analysis is skipped.
    let err = lyric::execute_unchecked(&mut db, src).unwrap_err();
    assert!(matches!(err, LyricError::TypeError(_)), "{err}");
}

#[test]
fn numeric_comparisons_normalize_int_and_rational() {
    let mut schema = lyric::oodb::Schema::new();
    schema
        .add_class(
            lyric::oodb::ClassDef::new("Meter").attr(lyric::oodb::AttrDef::scalar(
                "reading",
                lyric::oodb::AttrTarget::class("real"),
            )),
        )
        .unwrap();
    let mut db = Database::new(schema).unwrap();
    db.insert(
        Oid::named("m1"),
        "Meter",
        [("reading", Value::Scalar(Oid::Int(3)))],
    )
    .unwrap();
    db.insert(
        Oid::named("m2"),
        "Meter",
        [(
            "reading",
            Value::Scalar(Oid::Rat(lyric_arith::Rational::from_pair(7, 2))),
        )],
    )
    .unwrap();
    let res = execute(&mut db, "SELECT M FROM Meter M WHERE M.reading = 3").unwrap();
    assert_eq!(res.rows, vec![vec![Oid::named("m1")]]);
    let res = execute(&mut db, "SELECT M FROM Meter M WHERE M.reading > 3.25").unwrap();
    assert_eq!(res.rows, vec![vec![Oid::named("m2")]]);
}

#[test]
fn ground_selector_roots_traverse() {
    let mut db = db();
    // A ground oid (standard_desk) as path root, no FROM binding needed
    // for it.
    let res = execute(&mut db, "SELECT standard_desk.drawer.extent FROM Desk D").unwrap();
    assert_eq!(res.rows.len(), 1);
    let extent = res.rows[0][0].as_cst().unwrap();
    assert!(extent.denotes_same(&box2("w", "z", -1, 1, -1, 1)));
}

#[test]
fn shared_selector_variable_joins() {
    let mut db = db();
    // Two room objects whose catalog objects share a drawer object: none
    // in Figure 2 (each catalog object has its own drawer)...
    let res = execute(
        &mut db,
        "SELECT X, Y FROM Office_Object X, Office_Object Y
         WHERE X.drawer[D] AND Y.drawer[D] AND X != Y",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 0);
    // ...until we add a second desk sharing the standard drawer.
    db.insert(
        Oid::named("clone_desk"),
        "Desk",
        [
            ("name", Value::Scalar(Oid::str("clone"))),
            ("color", Value::Scalar(Oid::str("blue"))),
            (
                "extent",
                Value::Scalar(Oid::cst(box2("w", "z", -4, 4, -2, 2))),
            ),
            ("translation", Value::Scalar(Oid::cst(translation2()))),
            (
                "drawer_center",
                Value::Scalar(Oid::cst(lyric::paper_example::point2("p", "q", -2, 0))),
            ),
            ("drawer", Value::Scalar(Oid::named("standard_drawer"))),
        ],
    )
    .unwrap();
    let res = execute(
        &mut db,
        "SELECT X, Y FROM Office_Object X, Office_Object Y
         WHERE X.drawer[D] AND Y.drawer[D] AND X != Y",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 2); // the pair in both orders
}

#[test]
fn empty_from_extent_yields_no_rows() {
    let mut db = db();
    execute(
        &mut db,
        "CREATE VIEW Empty_Class AS SUBCLASS OF Desk
         SELECT X FROM Desk X WHERE X.color = 'chartreuse'",
    )
    .unwrap();
    let res = execute(&mut db, "SELECT X FROM Empty_Class X").unwrap();
    assert!(res.rows.is_empty());
}

#[test]
fn where_clause_order_allows_forward_binding_chains() {
    let mut db = db();
    // D bound in the first conjunct is traversed by the second.
    let res = execute(
        &mut db,
        "SELECT E FROM Desk X WHERE X.drawer[D] AND D.extent[E]",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 1);
}

#[test]
fn location_update_via_point_helper() {
    // point2 + set_attr round-trip, exercising the full update path used
    // by the examples.
    let mut db = db();
    db.set_attr(
        &Oid::named("my_desk"),
        "location",
        Value::Scalar(Oid::cst(point2("x", "y", 1, 1))),
    )
    .unwrap();
    let res = execute(
        &mut db,
        "SELECT O FROM Object_In_Room O WHERE O.location[L] AND (L(x,y) AND x = 1 AND y = 1)",
    )
    .unwrap();
    assert_eq!(res.rows, vec![vec![Oid::named("my_desk")]]);
}

#[test]
fn unknown_attribute_reports_searched_is_a_chain() {
    let mut db = db();
    // The evaluator walks the IS-A chain from the static class of the
    // step upward; the error reports exactly the classes it inspected.
    let err =
        lyric::execute_unchecked(&mut db, "SELECT X FROM Desk X WHERE X.whatever[Y]").unwrap_err();
    match err {
        LyricError::UnknownAttribute {
            class,
            attr,
            searched,
        } => {
            assert_eq!(class, "Desk");
            assert_eq!(attr, "whatever");
            assert_eq!(
                searched,
                vec!["Desk".to_string(), "Office_Object".to_string()]
            );
        }
        other => panic!("expected UnknownAttribute, got {other:?}"),
    }
    // The rendered message includes the chain, so a user can see which
    // classes were consulted.
    let msg = lyric::execute_unchecked(&mut db, "SELECT X FROM Desk X WHERE X.whatever[Y]")
        .unwrap_err()
        .to_string();
    assert!(
        msg.contains("searched IS-A chain: Desk -> Office_Object"),
        "{msg}"
    );
}
