//! Generative round-trip property: for random well-formed ASTs,
//! `parse(print(ast)) == ast`. This pins the printer and parser to each
//! other across the whole grammar, far beyond the hand-picked §4.1
//! examples.

use lyric::ast::*;
use lyric::span::Span;
use lyric::{parse_formula, parse_query};
use lyric_arith::Rational;
use proptest::prelude::*;

// Identifier pools chosen to avoid keywords and stay parseable.
const CLASSES: &[&str] = &["Desk", "Drawer", "Office_Object", "Region"];
const OBJ_VARS: &[&str] = &["X", "Y", "CO", "DSK"];
const ATTRS: &[&str] = &["extent", "translation", "color", "drawer", "location"];
const CVARS: &[&str] = &["w", "z", "u", "v", "p", "q"];

fn ident(pool: &'static [&'static str]) -> impl Strategy<Value = String> {
    (0..pool.len()).prop_map(move |i| pool[i].to_string())
}

fn selector_strategy() -> impl Strategy<Value = Selector> {
    // No `Lit(Named)` selectors: the parser always reads bare identifiers
    // as `Var` (resolution to ground named oids happens at evaluation), so
    // `Lit(Named)` cannot round-trip textually.
    prop_oneof![
        ident(OBJ_VARS).prop_map(Selector::Var),
        (-99..=99i64).prop_map(|i| Selector::Lit(OidLit::Int(i))),
        Just(Selector::Lit(OidLit::Str("red".into()))),
        any::<bool>().prop_map(|b| Selector::Lit(OidLit::Bool(b))),
    ]
}

fn path_strategy() -> impl Strategy<Value = PathExpr> {
    (
        ident(OBJ_VARS),
        proptest::collection::vec(
            (ident(ATTRS), proptest::option::of(selector_strategy())),
            0..3,
        ),
    )
        .prop_map(|(root, steps)| PathExpr {
            span: Span::DUMMY,
            root: Selector::Var(root),
            steps: steps
                .into_iter()
                .map(|(attr, selector)| Step {
                    attr,
                    selector,
                    span: Span::DUMMY,
                })
                .collect(),
        })
}

fn arith_strategy() -> impl Strategy<Value = Arith> {
    let leaf = prop_oneof![
        // Non-negative integers only: "-3" re-parses as Neg(3).
        (0..=50i64).prop_map(|n| Arith::Num(Rational::from_int(n))),
        ident(CVARS).prop_map(Arith::Var),
        path_strategy()
            .prop_filter("paths with steps only (bare idents parse as Var)", |p| !p
                .steps
                .is_empty())
            .prop_map(Arith::PathConst),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Mul(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Arith::Neg(Box::new(a))),
        ]
    })
}

fn crelop_strategy() -> impl Strategy<Value = CRelOp> {
    prop_oneof![
        Just(CRelOp::Eq),
        Just(CRelOp::Neq),
        Just(CRelOp::Le),
        Just(CRelOp::Lt),
        Just(CRelOp::Ge),
        Just(CRelOp::Gt),
    ]
}

fn formula_strategy() -> impl Strategy<Value = Formula> {
    let chain = (
        arith_strategy(),
        proptest::collection::vec((crelop_strategy(), arith_strategy()), 1..3),
    )
        .prop_map(|(first, rest)| Formula::Chain {
            first,
            rest,
            span: Span::DUMMY,
        });
    let pred = (
        path_strategy(),
        proptest::option::of(proptest::collection::vec(ident(CVARS), 1..3)),
    )
        .prop_map(|(path, vars)| Formula::Pred { path, vars });
    let leaf = prop_oneof![chain, pred];
    leaf.prop_recursive(3, 20, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Formula::Not(Box::new(a))),
            (proptest::collection::vec(ident(CVARS), 1..3), inner).prop_map(|(mut vars, body)| {
                vars.dedup();
                Formula::Proj {
                    vars,
                    body: Box::new(body),
                    span: Span::DUMMY,
                }
            }),
        ]
    })
}

fn cmp_operand_strategy() -> impl Strategy<Value = CmpOperand> {
    prop_oneof![
        path_strategy().prop_map(CmpOperand::Path),
        (0..=50i64).prop_map(|n| CmpOperand::Num(Rational::from_int(n))),
        (-50..=-1i64).prop_map(|n| CmpOperand::Num(Rational::from_int(n))),
        Just(CmpOperand::Str("red".into())),
        any::<bool>().prop_map(CmpOperand::Bool),
    ]
}

fn cmp_op_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Neq),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Contains),
    ]
}

/// Conditions are generated in the parenthesis-free normal form the
/// printer emits without grouping: left-folded OR-chains of left-folded
/// AND-chains of (possibly negated) leaves. Parenthesized Boolean groups
/// are intentionally excluded: a group like `(X.a = 1 OR Y.b = 2)` is
/// *defined* to re-parse as a CST satisfiability predicate when it is
/// formula-shaped (the parser's documented formula-first policy, matching
/// the paper's convention of parenthesizing CST predicates).
fn cond_strategy() -> impl Strategy<Value = Cond> {
    let leaf = prop_oneof![
        // A bare path predicate must have at least one step: a bare
        // variable would be ambiguous with other leaves when reprinted.
        path_strategy()
            .prop_filter("non-trivial path", |p| !p.steps.is_empty())
            .prop_map(Cond::PathPred),
        (
            cmp_operand_strategy(),
            cmp_op_strategy(),
            cmp_operand_strategy()
        )
            .prop_map(|(lhs, op, rhs)| Cond::Compare { lhs, op, rhs }),
        formula_strategy().prop_map(Cond::Sat),
        (formula_strategy(), formula_strategy()).prop_map(|(a, b)| Cond::Entails(a, b)),
    ];
    let maybe_not = prop_oneof![
        3 => leaf.clone(),
        1 => leaf.prop_map(|c| Cond::Not(Box::new(c))),
    ];
    let and_chain = proptest::collection::vec(maybe_not, 1..4).prop_map(|leaves| {
        leaves
            .into_iter()
            .reduce(|a, b| Cond::And(Box::new(a), Box::new(b)))
            .expect("non-empty")
    });
    proptest::collection::vec(and_chain, 1..3).prop_map(|chains| {
        chains
            .into_iter()
            .reduce(|a, b| Cond::Or(Box::new(a), Box::new(b)))
            .expect("non-empty")
    })
}

fn select_value_strategy() -> impl Strategy<Value = SelectValue> {
    prop_oneof![
        path_strategy().prop_map(SelectValue::Path),
        (
            proptest::collection::vec(ident(CVARS), 1..3),
            formula_strategy()
        )
            .prop_map(|(mut vars, body)| {
                vars.dedup();
                SelectValue::Formula(Formula::Proj {
                    vars,
                    body: Box::new(body),
                    span: Span::DUMMY,
                })
            }),
        (arith_strategy(), formula_strategy()).prop_map(|(objective, formula)| {
            SelectValue::Optimize {
                kind: OptKind::Max,
                objective,
                formula,
            }
        }),
    ]
}

fn query_strategy() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec(select_value_strategy(), 1..3),
        proptest::collection::vec((ident(CLASSES), ident(OBJ_VARS)), 1..3),
        proptest::option::of(cond_strategy()),
    )
        .prop_map(|(values, mut from, where_clause)| {
            // Distinct FROM variables keep the query well-formed.
            from.sort_by(|a, b| a.1.cmp(&b.1));
            from.dedup_by(|a, b| a.1 == b.1);
            Query::Select(SelectQuery {
                items: values
                    .into_iter()
                    .map(|value| SelectItem {
                        label: None,
                        value,
                        span: Span::DUMMY,
                    })
                    .collect(),
                signature: vec![],
                from: from
                    .into_iter()
                    .map(|(class, var)| FromItem::new(class, var))
                    .collect(),
                oid_function: None,
                oid_function_spans: vec![],
                where_clause,
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn formulas_roundtrip(f in formula_strategy()) {
        let printed = f.to_string();
        let reparsed = parse_formula(&printed)
            .unwrap_or_else(|e| panic!("unparseable print: {printed}\n{e}"));
        prop_assert_eq!(&reparsed, &f, "drift via {}", printed);
    }

    #[test]
    fn queries_roundtrip(q in query_strategy()) {
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("unparseable print: {printed}\n{e}"));
        prop_assert_eq!(&reparsed, &q, "drift via {}", printed);
    }
}
