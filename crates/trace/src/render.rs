//! The human-readable sink: an indented span tree with per-span hot-path
//! percentages, counter deltas, and event summaries — the REPL's
//! `:profile` output.

use crate::model::{EventKind, Trace, TraceEvent, TraceSpan};
use std::fmt::Write as _;
use std::time::Duration;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Summarize a span's events: repeated kinds collapse to a count.
fn summarize_events(events: &[TraceEvent]) -> Vec<String> {
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut pruned = 0u64;
    let mut products = 0u64;
    let mut rest: Vec<String> = Vec::new();
    for e in events {
        match &e.kind {
            EventKind::CacheHit => cache_hits += 1,
            EventKind::CacheMiss => cache_misses += 1,
            EventKind::DisjunctsPruned { count } => pruned += count,
            EventKind::DnfProduct { .. } => products += 1,
            other => rest.push(other.label()),
        }
    }
    let mut out = Vec::new();
    if cache_hits + cache_misses > 0 {
        out.push(format!(
            "cache {cache_hits}/{} hits",
            cache_hits + cache_misses
        ));
    }
    if pruned > 0 {
        out.push(format!("{pruned} disjuncts pruned"));
    }
    if products > 0 {
        out.push(format!("{products} dnf products"));
    }
    out.extend(rest);
    out
}

/// Render the trace as an indented tree. Each line shows the span's kind
/// and label, inclusive and self wall-clock, the self share of the total
/// query time (the hot-path percentage), the source byte range, the
/// nonzero self counter deltas, and an event summary.
pub fn render_tree(trace: &Trace) -> String {
    let total = trace.total_duration().max(Duration::from_nanos(1));
    let mut out = String::new();
    fn go(span: &TraceSpan, depth: usize, total: Duration, out: &mut String) {
        let indent = "  ".repeat(depth);
        let pct = 100.0 * span.self_time().as_secs_f64() / total.as_secs_f64();
        let _ = write!(
            out,
            "{indent}{}{}{}  {:.3} ms (self {:.3} ms, {pct:.1}%)",
            span.kind.name(),
            if span.label.is_empty() { "" } else { " " },
            span.label,
            ms(span.duration),
            ms(span.self_time()),
        );
        if let Some((a, b)) = span.source {
            let _ = write!(out, "  src {a}..{b}");
        }
        let counters = span.self_stats().nonzero_counters();
        if !counters.is_empty() {
            let parts: Vec<String> = counters.iter().map(|(n, v)| format!("{n}={v}")).collect();
            let _ = write!(out, "  [{}]", parts.join(" "));
        }
        let events = summarize_events(&span.events);
        if !events.is_empty() {
            let _ = write!(out, "  ({})", events.join(", "));
        }
        out.push('\n');
        for c in &span.children {
            go(c, depth + 1, total, out);
        }
    }
    go(&trace.root, 0, total, &mut out);
    if trace.dropped_spans > 0 {
        let _ = writeln!(
            out,
            "… {} spans over the {}-span cap were folded into their parents",
            trace.dropped_spans,
            crate::collect::Collector::MAX_SPANS,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::Collector;
    use crate::model::SpanKind;
    use crate::stats::EngineStats;

    #[test]
    fn renders_every_span_with_percentages() {
        let mut c = Collector::new("SELECT 1", 8);
        c.enter(
            SpanKind::Parse,
            "parse".into(),
            Some((0, 8)),
            EngineStats::default(),
        );
        c.exit(EngineStats::default());
        c.enter(SpanKind::Where, String::new(), None, EngineStats::default());
        c.event(EventKind::CacheHit);
        c.event(EventKind::CacheMiss);
        c.event(EventKind::DisjunctsPruned { count: 3 });
        let after = EngineStats {
            sat_checks: 2,
            ..Default::default()
        };
        c.exit(after);
        let text = render_tree(&c.finish(after));
        assert!(text.contains("query SELECT 1"), "{text}");
        assert!(text.contains("  parse parse"), "{text}");
        assert!(text.contains("src 0..8"), "{text}");
        assert!(text.contains("[sat_checks=2]"), "{text}");
        assert!(text.contains("cache 1/2 hits"), "{text}");
        assert!(text.contains("3 disjuncts pruned"), "{text}");
        assert!(text.contains('%'), "{text}");
    }
}
