//! The explain plan model: a static operator tree with per-node
//! annotations, the trace→plan attribution fold behind EXPLAIN ANALYZE,
//! and the text/JSON renderers.
//!
//! A [`PlanNode`] tree describes *what the evaluator will do* for one
//! query: one node per operator site (FROM binding, WHERE predicate,
//! SELECT item, …), annotated with the static features that govern
//! constraint-query cost — class extent sizes, constraint atom counts,
//! disjunct counts, quantifier depth — plus the algebra rewrite rules the
//! optimizer applied to the query's FP form. Node ids are assigned in
//! preorder, `0..node_count()`, and are **stable for a given query text**:
//! they are threaded through the evaluator's span instrumentation
//! (`TraceSpan::node`) so that [`analyze`] can charge every span's
//! exclusive time and counters to a plan operator.
//!
//! The attribution fold is total: spans without a node id (LP solves, FM
//! eliminations, parse/analyze phases, worker roots) are charged to their
//! nearest annotated ancestor, the root span to plan node 0. Hence two
//! pinned invariants, checked by `tests/explain_differential.rs` and the
//! `explain_smoke` CI binary:
//!
//! * Σ over nodes of exclusive counters **equals the trace's root stats
//!   exactly** (counters are monotonic; nothing is lost or counted twice);
//! * Σ over nodes of exclusive time equals Σ over spans of
//!   [`TraceSpan::self_time`] exactly, which equals the traced total up to
//!   the collector's saturating-subtraction tolerance (clock-granularity
//!   nanoseconds per span on serial traces; on parallel traces worker
//!   spans overlap, so the self-time sum is CPU time and may legitimately
//!   exceed the root's wall-clock).

use crate::json::Json;
use crate::model::{Trace, TraceSpan};
use crate::stats::{EngineStats, COUNTER_NAMES};
use std::fmt::Write as _;
use std::time::Duration;

/// One operator in an explain plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Preorder id, `0` for the root; stable for a given query text.
    pub id: u32,
    /// Stable snake_case operator name (`select`, `from_bind`, `where`,
    /// `and`, `or`, `not`, `sat`, `entails`, `compare`, `path_pred`,
    /// `select_item`, `optimize`).
    pub op: &'static str,
    /// Human detail: class/variable names, path text, operator symbol.
    pub label: String,
    /// Byte range of the source fragment this operator evaluates.
    pub source: Option<(usize, usize)>,
    /// For `from_bind` nodes: the class extent cardinality (IS-A cone
    /// included) at plan time.
    pub extent_size: Option<u64>,
    /// Constraint atoms syntactically under this operator.
    pub atoms: u32,
    /// Disjunction alternatives (OR arms) syntactically under this
    /// operator.
    pub disjuncts: u32,
    /// Existential quantifiers (`EXIST … :`) syntactically under this
    /// operator.
    pub quantifiers: u32,
    /// Algebra rewrite rules the optimizer applied to this query's FP
    /// form, in application order (root node only).
    pub rules: Vec<&'static str>,
    /// Child operators, in evaluation order.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// A node with the given id, operator and label; annotations default
    /// to empty.
    pub fn new(id: u32, op: &'static str, label: impl Into<String>) -> PlanNode {
        PlanNode {
            id,
            op,
            label: label.into(),
            source: None,
            extent_size: None,
            atoms: 0,
            disjuncts: 0,
            quantifiers: 0,
            rules: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Number of nodes in this subtree, itself included.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(PlanNode::node_count)
            .sum::<usize>()
    }

    /// Visit every node, depth-first preorder, with its depth.
    pub fn walk(&self, f: &mut impl FnMut(&PlanNode, usize)) {
        fn go(n: &PlanNode, depth: usize, f: &mut impl FnMut(&PlanNode, usize)) {
            f(n, depth);
            for c in &n.children {
                go(c, depth + 1, f);
            }
        }
        go(self, 0, f);
    }

    /// The nodes indexed by id (`out[id].id == id`). Panics if ids are not
    /// exactly `0..node_count()` — the builder assigns them in preorder,
    /// so this holds by construction.
    pub fn by_id(&self) -> Vec<&PlanNode> {
        fn collect<'a>(n: &'a PlanNode, out: &mut Vec<&'a PlanNode>) {
            out.push(n);
            for c in &n.children {
                collect(c, out);
            }
        }
        let mut nodes: Vec<&PlanNode> = Vec::with_capacity(self.node_count());
        collect(self, &mut nodes);
        nodes.sort_by_key(|n| n.id);
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id as usize, i, "plan node ids must be dense preorder");
        }
        nodes
    }

    /// FNV-1a hash of the plan *shape*: operators, labels, static
    /// annotations and tree structure — everything except runtime
    /// observations and extent sizes (so the same query text hashes
    /// identically as the database grows). Keys the cost-profile store.
    pub fn shape_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        fn feed(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        self.walk(&mut |n, depth| {
            feed(&mut h, n.op.as_bytes());
            feed(&mut h, n.label.as_bytes());
            feed(
                &mut h,
                &[
                    depth as u8,
                    n.children.len() as u8,
                    n.atoms as u8,
                    n.disjuncts as u8,
                    n.quantifiers as u8,
                ],
            );
        });
        h
    }
}

/// Runtime observations attributed to one plan node by [`analyze`].
#[derive(Debug, Clone, Default)]
pub struct NodeObs {
    /// Spans stamped with this node's id (operator invocations).
    pub invocations: u64,
    /// Input cardinality (bindings/rows entering the operator), recorded
    /// by the evaluator's row counters — deterministic across thread
    /// counts.
    pub rows_in: u64,
    /// Output cardinality (bindings/rows leaving the operator).
    pub rows_out: u64,
    /// Exclusive wall-clock: Σ [`TraceSpan::self_time`] over spans
    /// attributed here. CPU time on parallel traces.
    pub self_time: Duration,
    /// Inclusive wall-clock: Σ duration over *topmost* spans stamped with
    /// this id (nested re-entries are not double counted).
    pub time: Duration,
    /// Exclusive counter deltas attributed here; sums exactly to the
    /// query's total stats across all nodes.
    pub stats: EngineStats,
}

/// The result of attributing one trace to one plan: per-node observations
/// plus the trace totals the invariants are checked against.
#[derive(Debug, Clone)]
pub struct PlanAnalysis {
    /// Observations indexed by plan node id.
    pub nodes: Vec<NodeObs>,
    /// The traced query total (root span duration).
    pub total: Duration,
    /// Σ span self-times over the whole trace; equals
    /// `nodes.iter().map(self_time).sum()` exactly.
    pub total_self: Duration,
    /// The traced query's aggregate counters (root span stats).
    pub total_stats: EngineStats,
}

impl PlanAnalysis {
    /// Σ exclusive time over all nodes. Equal to `total_self` by
    /// construction; pinned by the differential suite.
    pub fn summed_self_time(&self) -> Duration {
        self.nodes.iter().map(|n| n.self_time).sum()
    }

    /// Σ exclusive counters over all nodes. Equal to `total_stats` by
    /// construction; pinned by the differential suite.
    pub fn summed_stats(&self) -> EngineStats {
        let mut acc = EngineStats::default();
        for n in &self.nodes {
            acc.absorb(&n.stats);
        }
        acc
    }
}

/// Attribute every span of `trace` to a node of `plan`: a span stamped
/// with a node id is charged there; an unstamped span is charged to its
/// nearest stamped ancestor (the root falls through to node 0). Row
/// counters are recorded by the evaluator outside the trace; the caller
/// fills `rows_in`/`rows_out` afterwards.
pub fn analyze(plan: &PlanNode, trace: &Trace) -> PlanAnalysis {
    let count = plan.node_count();
    let mut nodes = vec![NodeObs::default(); count];
    let mut total_self = Duration::ZERO;
    fn go(span: &TraceSpan, inherited: u32, nodes: &mut [NodeObs], total_self: &mut Duration) {
        let here = match span.node {
            Some(id) if (id as usize) < nodes.len() => id,
            _ => inherited,
        };
        let obs = &mut nodes[here as usize];
        if span.node == Some(here) {
            obs.invocations += 1;
            if inherited != here {
                obs.time += span.duration;
            }
        }
        obs.self_time += span.self_time();
        obs.stats.absorb(&span.self_stats());
        *total_self += span.self_time();
        for c in &span.children {
            go(c, here, nodes, total_self);
        }
    }
    go(&trace.root, 0, &mut nodes, &mut total_self);
    if count > 0 {
        // The root operator covers the whole query.
        nodes[0].time = trace.root.duration;
        if nodes[0].invocations == 0 {
            nodes[0].invocations = 1;
        }
    }
    PlanAnalysis {
        nodes,
        total: trace.root.duration,
        total_self,
        total_stats: *trace.total_stats(),
    }
}

/// The `k` nodes with the largest exclusive time, descending — the
/// compact summary the slow-query log attaches. Returns
/// `(node, observations)` pairs.
pub fn top_self_nodes<'a>(
    plan: &'a PlanNode,
    analysis: &'a PlanAnalysis,
    k: usize,
) -> Vec<(&'a PlanNode, &'a NodeObs)> {
    let by_id = plan.by_id();
    let mut ranked: Vec<(&PlanNode, &NodeObs)> = by_id
        .iter()
        .map(|n| (*n, &analysis.nodes[n.id as usize]))
        .collect();
    ranked.sort_by(|a, b| b.1.self_time.cmp(&a.1.self_time).then(a.0.id.cmp(&b.0.id)));
    ranked.truncate(k);
    ranked
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn us(d: Duration) -> Json {
    Json::Num(d.as_secs_f64() * 1e6)
}

/// Render the plan as an indented text tree, one line per operator; with
/// an analysis, each line adds rows, exclusive/inclusive time, the
/// hot-path percentage and the nonzero attributed counters (the REPL's
/// `:explain` / `:explain analyze` output).
pub fn render_plan(plan: &PlanNode, analysis: Option<&PlanAnalysis>) -> String {
    let mut out = String::new();
    let total = analysis
        .map(|a| a.total_self.max(Duration::from_nanos(1)))
        .unwrap_or(Duration::from_nanos(1));
    plan.walk(&mut |n, depth| {
        let indent = "  ".repeat(depth);
        let _ = write!(
            out,
            "{indent}#{} {}{}{}",
            n.id,
            n.op,
            if n.label.is_empty() { "" } else { " " },
            n.label
        );
        if let Some(size) = n.extent_size {
            let _ = write!(out, "  extent={size}");
        }
        let mut annot: Vec<String> = Vec::new();
        if n.atoms > 0 {
            annot.push(format!("atoms={}", n.atoms));
        }
        if n.disjuncts > 0 {
            annot.push(format!("disjuncts={}", n.disjuncts));
        }
        if n.quantifiers > 0 {
            annot.push(format!("quantifiers={}", n.quantifiers));
        }
        if !annot.is_empty() {
            let _ = write!(out, "  [{}]", annot.join(" "));
        }
        if !n.rules.is_empty() {
            let _ = write!(out, "  rules: {}", n.rules.join(", "));
        }
        if let Some(a) = analysis {
            let obs = &a.nodes[n.id as usize];
            let pct = 100.0 * obs.self_time.as_secs_f64() / total.as_secs_f64();
            let _ = write!(
                out,
                "  rows={}→{}  {:.3} ms (self {:.3} ms, {pct:.1}%)  calls={}",
                obs.rows_in,
                obs.rows_out,
                ms(obs.time),
                ms(obs.self_time),
                obs.invocations,
            );
            let counters = obs.stats.nonzero_counters();
            if !counters.is_empty() {
                let parts: Vec<String> = counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
                let _ = write!(out, "  [{}]", parts.join(" "));
            }
        }
        out.push('\n');
    });
    if let Some(a) = analysis {
        let _ = writeln!(
            out,
            "total {:.3} ms (Σ self {:.3} ms)  {}",
            ms(a.total),
            ms(a.total_self),
            a.total_stats,
        );
    }
    out
}

fn node_json(n: &PlanNode, analysis: Option<&PlanAnalysis>) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![
        ("id".into(), Json::int(n.id as u64)),
        ("op".into(), Json::str(n.op)),
        ("label".into(), Json::str(n.label.clone())),
    ];
    if let Some((a, b)) = n.source {
        pairs.push(("src_start".into(), Json::int(a as u64)));
        pairs.push(("src_end".into(), Json::int(b as u64)));
    }
    if let Some(size) = n.extent_size {
        pairs.push(("extent".into(), Json::int(size)));
    }
    for (key, v) in [
        ("atoms", n.atoms),
        ("disjuncts", n.disjuncts),
        ("quantifiers", n.quantifiers),
    ] {
        if v > 0 {
            pairs.push((key.into(), Json::int(v as u64)));
        }
    }
    if !n.rules.is_empty() {
        pairs.push((
            "rules".into(),
            Json::Arr(n.rules.iter().map(|r| Json::str(*r)).collect()),
        ));
    }
    if let Some(a) = analysis {
        let obs = &a.nodes[n.id as usize];
        let mut counters: Vec<(String, Json)> = Vec::new();
        for (name, v) in COUNTER_NAMES.into_iter().zip(obs.stats.counters()) {
            if v > 0 {
                counters.push((name.into(), Json::int(v)));
            }
        }
        pairs.push((
            "analyze".into(),
            Json::obj([
                ("rows_in", Json::int(obs.rows_in)),
                ("rows_out", Json::int(obs.rows_out)),
                ("invocations", Json::int(obs.invocations)),
                ("self_us", us(obs.self_time)),
                ("total_us", us(obs.time)),
                ("counters", Json::Obj(counters)),
            ]),
        ));
    }
    pairs.push((
        "children".into(),
        Json::Arr(n.children.iter().map(|c| node_json(c, analysis)).collect()),
    ));
    Json::Obj(pairs)
}

/// Serialize the plan (and, when present, its analysis) as a JSON
/// document, hand-rolled in the Chrome-writer house style. The schema is
/// pinned by [`validate_plan_json`].
pub fn plan_to_json(plan: &PlanNode, analysis: Option<&PlanAnalysis>) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![
        ("version".into(), Json::int(1)),
        (
            "shape_hash".into(),
            Json::str(format!("{:016x}", plan.shape_hash())),
        ),
        ("node_count".into(), Json::int(plan.node_count() as u64)),
    ];
    if let Some(a) = analysis {
        pairs.push(("total_us".into(), us(a.total)));
        pairs.push(("total_self_us".into(), us(a.total_self)));
        let mut counters: Vec<(String, Json)> = Vec::new();
        for (name, v) in COUNTER_NAMES.into_iter().zip(a.total_stats.counters()) {
            if v > 0 {
                counters.push((name.into(), Json::int(v)));
            }
        }
        pairs.push(("stats".into(), Json::Obj(counters)));
    }
    pairs.push(("plan".into(), node_json(plan, analysis)));
    Json::Obj(pairs)
}

/// Structural validation of an explain-plan JSON document, shared by the
/// test suite and the `explain_smoke` CI binary: the document must parse,
/// carry `version` 1, a 16-hex-digit `shape_hash` and a `plan` tree whose
/// nodes all have a numeric `id`, a string `op` and a `children` array,
/// with ids dense in `0..node_count`. For analyzed documents (`total_us`
/// present) every node must carry an `analyze` object with numeric
/// `self_us`/`total_us`/rows, and the node `self_us` values must sum to
/// `total_self_us` (within float tolerance). Returns the node count.
pub fn validate_plan_json(text: &str) -> Result<usize, String> {
    let doc = crate::json::parse(text).map_err(|e| e.to_string())?;
    if doc.get("version").and_then(Json::as_f64) != Some(1.0) {
        return Err("missing or unsupported version".into());
    }
    let hash = doc
        .get("shape_hash")
        .and_then(Json::as_str)
        .ok_or("missing shape_hash")?;
    if hash.len() != 16 || !hash.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("malformed shape_hash {hash:?}"));
    }
    let analyzed = doc.get("total_us").is_some();
    let plan = doc.get("plan").ok_or("missing plan")?;
    let mut ids: Vec<u64> = Vec::new();
    let mut self_sum = 0.0f64;
    fn walk(
        node: &Json,
        analyzed: bool,
        ids: &mut Vec<u64>,
        self_sum: &mut f64,
    ) -> Result<(), String> {
        let id = node
            .get("id")
            .and_then(Json::as_f64)
            .ok_or("node lacks a numeric id")?;
        ids.push(id as u64);
        if node.get("op").and_then(Json::as_str).is_none() {
            return Err(format!("node {id} lacks op"));
        }
        if analyzed {
            let a = node
                .get("analyze")
                .ok_or_else(|| format!("analyzed node {id} lacks analyze"))?;
            for key in ["rows_in", "rows_out", "invocations", "self_us", "total_us"] {
                if a.get(key).and_then(Json::as_f64).is_none() {
                    return Err(format!("node {id} analyze lacks numeric {key}"));
                }
            }
            *self_sum += a.get("self_us").and_then(Json::as_f64).unwrap_or(0.0);
        }
        let children = node
            .get("children")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("node {id} lacks children array"))?;
        for c in children {
            walk(c, analyzed, ids, self_sum)?;
        }
        Ok(())
    }
    walk(plan, analyzed, &mut ids, &mut self_sum)?;
    let count = doc
        .get("node_count")
        .and_then(Json::as_f64)
        .ok_or("missing node_count")? as usize;
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    if sorted.len() != count || sorted.iter().enumerate().any(|(i, id)| i as u64 != *id) {
        return Err(format!("node ids are not dense 0..{count}: {sorted:?}"));
    }
    if analyzed {
        let total_self = doc
            .get("total_self_us")
            .and_then(Json::as_f64)
            .ok_or("analyzed document lacks total_self_us")?;
        // Float summation tolerance: half a microsecond per node.
        let tol = 0.5 * count as f64 + 1e-6;
        if (self_sum - total_self).abs() > tol {
            return Err(format!(
                "node self_us sum {self_sum} deviates from total_self_us {total_self}"
            ));
        }
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::Collector;
    use crate::model::SpanKind;

    fn stats(pivots: u64) -> EngineStats {
        EngineStats {
            pivots,
            ..Default::default()
        }
    }

    fn sample_plan() -> PlanNode {
        let mut root = PlanNode::new(0, "select", "q");
        root.rules = vec!["fuse_filter"];
        let mut from = PlanNode::new(1, "from_bind", "cabinet X");
        from.extent_size = Some(4);
        let mut wher = PlanNode::new(2, "where", "");
        let mut sat = PlanNode::new(3, "sat", "");
        sat.atoms = 2;
        sat.disjuncts = 1;
        wher.children.push(sat);
        root.children.push(from);
        root.children.push(wher);
        root
    }

    #[test]
    fn attribution_is_total_and_exact() {
        let plan = sample_plan();
        let mut c = Collector::new("q", 1);
        c.enter_node(SpanKind::FromBind, "f".into(), None, stats(0), Some(1));
        c.exit(stats(1));
        c.enter_node(SpanKind::Where, "w".into(), None, stats(1), Some(2));
        c.enter_node(SpanKind::SatCheck, String::new(), None, stats(1), Some(3));
        // An engine-internal span with no node: charged to sat (node 3).
        c.enter(SpanKind::LpSolve, "lp".into(), None, stats(2));
        c.exit(stats(7));
        c.exit(stats(7));
        c.exit(stats(8));
        let t = c.finish(stats(9));
        let a = analyze(&plan, &t);

        assert_eq!(a.nodes.len(), 4);
        assert_eq!(a.nodes[1].stats.pivots, 1);
        assert_eq!(a.nodes[3].stats.pivots, 6, "lp span charged to sat node");
        assert_eq!(a.nodes[2].stats.pivots, 1);
        assert_eq!(a.nodes[0].stats.pivots, 1, "root self charged to node 0");
        assert_eq!(a.summed_stats(), *t.total_stats());
        assert_eq!(a.summed_self_time(), a.total_self);
        assert_eq!(a.nodes[1].invocations, 1);
        assert_eq!(a.nodes[3].invocations, 1);
        assert_eq!(a.nodes[0].time, t.root.duration);
        let top = top_self_nodes(&plan, &a, 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].1.self_time >= top[1].1.self_time);
    }

    #[test]
    fn json_roundtrips_and_validates() {
        let plan = sample_plan();
        let text = plan_to_json(&plan, None).to_string();
        assert_eq!(validate_plan_json(&text), Ok(4));

        let mut c = Collector::new("q", 1);
        c.enter_node(SpanKind::Where, "w".into(), None, stats(0), Some(2));
        c.exit(stats(3));
        let t = c.finish(stats(3));
        let a = analyze(&plan, &t);
        let text = plan_to_json(&plan, Some(&a)).to_string();
        assert_eq!(validate_plan_json(&text), Ok(4));
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(
            doc.get("plan")
                .and_then(|p| p.get("op"))
                .and_then(Json::as_str),
            Some("select")
        );
        let rendered = render_plan(&plan, Some(&a));
        assert!(rendered.contains("#0 select q"), "{rendered}");
        assert!(rendered.contains("extent=4"), "{rendered}");
        assert!(rendered.contains("rules: fuse_filter"), "{rendered}");
        assert!(rendered.contains("atoms=2"), "{rendered}");
        assert!(rendered.contains("rows="), "{rendered}");
    }

    #[test]
    fn validator_rejects_malformed_plans() {
        assert!(validate_plan_json("not json").is_err());
        assert!(validate_plan_json("{\"version\":2}").is_err());
        let no_children = "{\"version\":1,\"shape_hash\":\"0000000000000000\",\
             \"node_count\":1,\"plan\":{\"id\":0,\"op\":\"select\",\"label\":\"\"}}";
        assert!(validate_plan_json(no_children)
            .unwrap_err()
            .contains("children"));
        let sparse_ids = "{\"version\":1,\"shape_hash\":\"0000000000000000\",\
             \"node_count\":1,\"plan\":{\"id\":2,\"op\":\"select\",\"label\":\"\",\
             \"children\":[]}}";
        assert!(validate_plan_json(sparse_ids)
            .unwrap_err()
            .contains("dense"));
    }

    #[test]
    fn shape_hash_ignores_extents_but_not_structure() {
        let a = sample_plan();
        let mut b = sample_plan();
        b.children[0].extent_size = Some(4000);
        assert_eq!(a.shape_hash(), b.shape_hash(), "extent growth keeps shape");
        let mut c = sample_plan();
        c.children[1].children[0].atoms = 3;
        assert_ne!(a.shape_hash(), c.shape_hash(), "atom count changes shape");
    }
}
