//! The span collector: an open-span stack that `lyric-engine` drives.
//!
//! The collector does not read the clock semantics or the counters itself;
//! the engine passes an [`EngineStats`] snapshot at every enter/exit so
//! the span's inclusive delta is exactly the counters consumed between the
//! two calls. Wall-clock offsets are measured against a single origin
//! `Instant`, which makes the nesting invariant (children contained in
//! their parent's `[start, end]`) exact by construction.
//!
//! The collector is bounded: once [`Collector::MAX_SPANS`] spans have been
//! recorded, further `enter` calls are counted (so `exit`s stay balanced)
//! but not materialized — their time and counters are absorbed by the
//! nearest recorded ancestor, keeping the sum invariants intact on
//! adversarial traces.

use crate::model::{EventKind, SpanKind, Trace, TraceEvent, TraceSpan};
use crate::stats::EngineStats;
use std::time::{Duration, Instant};

struct Pending {
    kind: SpanKind,
    label: String,
    source: Option<(usize, usize)>,
    start: Duration,
    stats_at_enter: EngineStats,
    events: Vec<TraceEvent>,
    children: Vec<TraceSpan>,
}

/// Accumulates one query's span tree. Created by `lyric_engine::run_traced`
/// and fed through the engine's span/event hooks.
pub struct Collector {
    origin: Instant,
    /// Open spans, outermost first; index 0 is the root and is only closed
    /// by [`finish`](Collector::finish).
    stack: Vec<Pending>,
    recorded: usize,
    /// Depth of currently-open spans that were *not* recorded (cap hit).
    suppressed: usize,
    dropped: u64,
}

impl Collector {
    /// Cap on recorded spans per trace. Generous for interactive queries
    /// (the paper's §4.1 queries record well under a thousand) while
    /// bounding memory on pathological binding sets.
    pub const MAX_SPANS: usize = 65_536;

    /// A fresh collector whose root span (kind [`SpanKind::Query`]) covers
    /// the whole run. `label` names the query for the sinks.
    pub fn new(label: impl Into<String>, source_len: usize) -> Collector {
        Collector {
            origin: Instant::now(),
            stack: vec![Pending {
                kind: SpanKind::Query,
                label: label.into(),
                source: Some((0, source_len)),
                start: Duration::ZERO,
                stats_at_enter: EngineStats::default(),
                events: Vec::new(),
                children: Vec::new(),
            }],
            recorded: 1,
            suppressed: 0,
            dropped: 0,
        }
    }

    /// Open a child span. `stats` is the context's current counter
    /// snapshot.
    pub fn enter(
        &mut self,
        kind: SpanKind,
        label: String,
        source: Option<(usize, usize)>,
        stats: EngineStats,
    ) {
        if self.recorded >= Self::MAX_SPANS {
            self.suppressed += 1;
            self.dropped += 1;
            return;
        }
        self.recorded += 1;
        self.stack.push(Pending {
            kind,
            label,
            source,
            start: self.origin.elapsed(),
            stats_at_enter: stats,
            events: Vec::new(),
            children: Vec::new(),
        });
    }

    /// Close the innermost open span. `stats` is the context's current
    /// counter snapshot; the span's delta is `stats − stats_at_enter`.
    pub fn exit(&mut self, stats: EngineStats) {
        if self.suppressed > 0 {
            self.suppressed -= 1;
            return;
        }
        if self.stack.len() <= 1 {
            // Unbalanced exit; the root is only closed by `finish`.
            return;
        }
        let done = self.stack.pop().expect("stack has an open span");
        let span = TraceSpan {
            kind: done.kind,
            label: done.label,
            source: done.source,
            start: done.start,
            duration: self.origin.elapsed().saturating_sub(done.start),
            stats: stats.delta_since(&done.stats_at_enter),
            events: done.events,
            children: done.children,
        };
        self.stack
            .last_mut()
            .expect("root span remains")
            .children
            .push(span);
    }

    /// Attach an event to the innermost open span.
    pub fn event(&mut self, kind: EventKind) {
        let at = self.origin.elapsed();
        self.stack
            .last_mut()
            .expect("root span remains")
            .events
            .push(TraceEvent { at, kind });
    }

    /// Current open-span depth (root included). Exposed for tests.
    pub fn depth(&self) -> usize {
        self.stack.len() + self.suppressed
    }

    /// Close every remaining span (a budget abort can unwind past guards
    /// whose drops already ran; any genuinely unbalanced remainder is
    /// closed here) and seal the trace. `stats` is the context's final
    /// counter state, which becomes the root's inclusive delta.
    pub fn finish(mut self, stats: EngineStats) -> Trace {
        self.suppressed = 0;
        while self.stack.len() > 1 {
            self.exit(stats);
        }
        let root = self.stack.pop().expect("root span");
        Trace {
            root: TraceSpan {
                kind: root.kind,
                label: root.label,
                source: root.source,
                start: Duration::ZERO,
                duration: self.origin.elapsed(),
                stats,
                events: root.events,
                children: root.children,
            },
            dropped_spans: self.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pivots: u64) -> EngineStats {
        EngineStats {
            pivots,
            ..Default::default()
        }
    }

    #[test]
    fn nesting_and_deltas() {
        let mut c = Collector::new("q", 10);
        c.enter(SpanKind::Parse, "parse".into(), Some((0, 10)), stats(0));
        c.exit(stats(0));
        c.enter(SpanKind::Where, "where".into(), None, stats(0));
        c.enter(SpanKind::SatCheck, "sat".into(), Some((3, 7)), stats(1));
        c.event(EventKind::CacheMiss);
        c.exit(stats(5));
        c.exit(stats(6));
        let t = c.finish(stats(6));

        assert_eq!(t.root.kind, SpanKind::Query);
        assert_eq!(t.root.children.len(), 2);
        let wher = &t.root.children[1];
        assert_eq!(wher.stats.pivots, 6);
        let sat = &wher.children[0];
        assert_eq!(sat.stats.pivots, 4);
        assert_eq!(sat.events.len(), 1);
        assert_eq!(wher.self_stats().pivots, 2);
        assert_eq!(t.summed_self_stats().pivots, 6);
        assert_eq!(t.span_count(), 4);
        assert_eq!(t.dropped_spans, 0);
        // Children nest inside their parents in time.
        t.root.walk(&mut |s, _| {
            for ch in &s.children {
                assert!(ch.start >= s.start);
                assert!(ch.end() <= s.end());
            }
        });
    }

    #[test]
    fn unbalanced_spans_are_closed_by_finish() {
        let mut c = Collector::new("q", 0);
        c.enter(SpanKind::Where, "w".into(), None, stats(0));
        c.enter(SpanKind::SatCheck, "s".into(), None, stats(0));
        let t = c.finish(stats(9));
        assert_eq!(t.span_count(), 3);
        assert_eq!(t.total_stats().pivots, 9);
        assert_eq!(t.summed_self_stats().pivots, 9);
    }

    #[test]
    fn cap_suppresses_but_keeps_balance() {
        let mut c = Collector::new("q", 0);
        for _ in 0..(Collector::MAX_SPANS + 10) {
            c.enter(SpanKind::SatCheck, "s".into(), None, stats(0));
            c.exit(stats(0));
        }
        assert_eq!(c.depth(), 1);
        let t = c.finish(stats(1));
        assert_eq!(t.dropped_spans, 11);
        assert_eq!(t.span_count(), Collector::MAX_SPANS);
        // The suppressed spans' work is still in the root's delta.
        assert_eq!(t.summed_self_stats().pivots, 1);
    }
}
