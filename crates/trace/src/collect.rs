//! The span collector: an open-span stack that `lyric-engine` drives.
//!
//! The collector does not read the clock semantics or the counters itself;
//! the engine passes an [`EngineStats`] snapshot at every enter/exit so
//! the span's inclusive delta is exactly the counters consumed between the
//! two calls. Wall-clock offsets are measured against a single origin
//! `Instant`, which makes the nesting invariant (children contained in
//! their parent's `[start, end]`) exact by construction.
//!
//! The collector is bounded: once [`Collector::MAX_SPANS`] spans have been
//! recorded, further `enter` calls are counted (so `exit`s stay balanced)
//! but not materialized — their time and counters are absorbed by the
//! nearest recorded ancestor, keeping the sum invariants intact on
//! adversarial traces.

use crate::model::{EventKind, SpanKind, Trace, TraceEvent, TraceSpan, MAIN_TID};
use crate::stats::EngineStats;
use std::time::{Duration, Instant};

struct Pending {
    kind: SpanKind,
    label: String,
    source: Option<(usize, usize)>,
    start: Duration,
    stats_at_enter: EngineStats,
    events: Vec<TraceEvent>,
    children: Vec<TraceSpan>,
    node: Option<u32>,
}

/// Accumulates one query's span tree. Created by `lyric_engine::run_traced`
/// and fed through the engine's span/event hooks. Parallel regions create
/// one [`Collector::worker`] per worker thread against the *same* origin
/// `Instant`, so worker offsets nest inside the parent's open span; the
/// sealed worker subtrees are grafted back with
/// [`Collector::attach_subtree`].
pub struct Collector {
    origin: Instant,
    /// Thread id stamped on every span this collector records.
    tid: u32,
    /// Open spans, outermost first; index 0 is the root and is only closed
    /// by [`finish`](Collector::finish).
    stack: Vec<Pending>,
    recorded: usize,
    /// Depth of currently-open spans that were *not* recorded (cap hit).
    suppressed: usize,
    dropped: u64,
}

impl Collector {
    /// Cap on recorded spans per trace. Generous for interactive queries
    /// (the paper's §4.1 queries record well under a thousand) while
    /// bounding memory on pathological binding sets.
    pub const MAX_SPANS: usize = 65_536;

    /// A fresh collector whose root span (kind [`SpanKind::Query`]) covers
    /// the whole run. `label` names the query for the sinks.
    pub fn new(label: impl Into<String>, source_len: usize) -> Collector {
        Collector {
            origin: Instant::now(),
            tid: MAIN_TID,
            stack: vec![Pending {
                kind: SpanKind::Query,
                label: label.into(),
                source: Some((0, source_len)),
                start: Duration::ZERO,
                stats_at_enter: EngineStats::default(),
                events: Vec::new(),
                children: Vec::new(),
                node: None,
            }],
            recorded: 1,
            suppressed: 0,
            dropped: 0,
        }
    }

    /// A per-thread sub-collector for one worker of a parallel region. It
    /// measures against the parent's `origin`, so its offsets are directly
    /// comparable with (and nest inside) the parent tree's, and stamps
    /// `tid` on every span. The root span is a [`SpanKind::Worker`] whose
    /// interval is the worker's lifetime; seal it with
    /// [`finish_subtree`](Collector::finish_subtree).
    pub fn worker(origin: Instant, tid: u32, label: impl Into<String>) -> Collector {
        Collector {
            origin,
            tid,
            stack: vec![Pending {
                kind: SpanKind::Worker,
                label: label.into(),
                source: None,
                start: origin.elapsed(),
                stats_at_enter: EngineStats::default(),
                events: Vec::new(),
                children: Vec::new(),
                node: None,
            }],
            recorded: 1,
            suppressed: 0,
            dropped: 0,
        }
    }

    /// The origin `Instant` all offsets are measured against. Parallel
    /// regions pass this to [`Collector::worker`].
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Open a child span. `stats` is the context's current counter
    /// snapshot.
    pub fn enter(
        &mut self,
        kind: SpanKind,
        label: String,
        source: Option<(usize, usize)>,
        stats: EngineStats,
    ) {
        self.enter_node(kind, label, source, stats, None);
    }

    /// [`enter`](Collector::enter) with an explain-plan node id stamped on
    /// the span; `execute_explained` threads the id so the attribution
    /// fold ([`crate::plan::analyze`]) can charge the span's exclusive
    /// time and counters to its plan operator.
    pub fn enter_node(
        &mut self,
        kind: SpanKind,
        label: String,
        source: Option<(usize, usize)>,
        stats: EngineStats,
        node: Option<u32>,
    ) {
        if self.recorded >= Self::MAX_SPANS {
            self.suppressed += 1;
            self.dropped += 1;
            return;
        }
        self.recorded += 1;
        self.stack.push(Pending {
            kind,
            label,
            source,
            start: self.origin.elapsed(),
            stats_at_enter: stats,
            events: Vec::new(),
            children: Vec::new(),
            node,
        });
    }

    /// Close the innermost open span. `stats` is the context's current
    /// counter snapshot; the span's delta is `stats − stats_at_enter`.
    pub fn exit(&mut self, stats: EngineStats) {
        if self.suppressed > 0 {
            self.suppressed -= 1;
            return;
        }
        if self.stack.len() <= 1 {
            // Unbalanced exit; the root is only closed by `finish`.
            return;
        }
        let done = self.stack.pop().expect("stack has an open span");
        let span = TraceSpan {
            kind: done.kind,
            tid: self.tid,
            label: done.label,
            source: done.source,
            start: done.start,
            duration: self.origin.elapsed().saturating_sub(done.start),
            stats: stats.delta_since(&done.stats_at_enter),
            events: done.events,
            children: done.children,
            node: done.node,
        };
        self.stack
            .last_mut()
            .expect("root span remains")
            .children
            .push(span);
    }

    /// Graft a sealed worker subtree under the innermost open span, in
    /// merge order. `dropped` is the worker collector's own drop count.
    /// If recording the subtree would cross the span cap it is folded
    /// (dropped) instead — its time and counters are already covered by
    /// the parent span's inclusive delta, so the sum invariants hold.
    pub fn attach_subtree(&mut self, subtree: TraceSpan, dropped: u64) {
        self.dropped += dropped;
        let size = subtree.tree_size();
        if self.recorded + size > Self::MAX_SPANS {
            self.dropped += size as u64;
            return;
        }
        self.recorded += size;
        self.stack
            .last_mut()
            .expect("root span remains")
            .children
            .push(subtree);
    }

    /// Attach an event to the innermost open span.
    pub fn event(&mut self, kind: EventKind) {
        let at = self.origin.elapsed();
        self.stack
            .last_mut()
            .expect("root span remains")
            .events
            .push(TraceEvent { at, kind });
    }

    /// Current open-span depth (root included). Exposed for tests.
    pub fn depth(&self) -> usize {
        self.stack.len() + self.suppressed
    }

    /// Close every remaining span (a budget abort can unwind past guards
    /// whose drops already ran; any genuinely unbalanced remainder is
    /// closed here) and seal the trace. `stats` is the context's final
    /// counter state, which becomes the root's inclusive delta.
    pub fn finish(mut self, stats: EngineStats) -> Trace {
        let dropped = self.dropped;
        let root = self.seal_root(stats);
        Trace {
            root,
            dropped_spans: dropped,
        }
    }

    /// Seal a [`Collector::worker`] sub-collector: close any remaining
    /// spans and return the worker-root span (for
    /// [`attach_subtree`](Collector::attach_subtree)) plus the drop count.
    /// `stats` is the worker's final *local* counter state, which becomes
    /// the subtree root's inclusive delta.
    pub fn finish_subtree(mut self, stats: EngineStats) -> (TraceSpan, u64) {
        let dropped = self.dropped;
        (self.seal_root(stats), dropped)
    }

    fn seal_root(&mut self, stats: EngineStats) -> TraceSpan {
        self.suppressed = 0;
        while self.stack.len() > 1 {
            self.exit(stats);
        }
        let root = self.stack.pop().expect("root span");
        TraceSpan {
            kind: root.kind,
            tid: self.tid,
            label: root.label,
            source: root.source,
            start: root.start,
            duration: self.origin.elapsed().saturating_sub(root.start),
            stats: stats.delta_since(&root.stats_at_enter),
            events: root.events,
            children: root.children,
            node: root.node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pivots: u64) -> EngineStats {
        EngineStats {
            pivots,
            ..Default::default()
        }
    }

    #[test]
    fn nesting_and_deltas() {
        let mut c = Collector::new("q", 10);
        c.enter(SpanKind::Parse, "parse".into(), Some((0, 10)), stats(0));
        c.exit(stats(0));
        c.enter(SpanKind::Where, "where".into(), None, stats(0));
        c.enter(SpanKind::SatCheck, "sat".into(), Some((3, 7)), stats(1));
        c.event(EventKind::CacheMiss);
        c.exit(stats(5));
        c.exit(stats(6));
        let t = c.finish(stats(6));

        assert_eq!(t.root.kind, SpanKind::Query);
        assert_eq!(t.root.children.len(), 2);
        let wher = &t.root.children[1];
        assert_eq!(wher.stats.pivots, 6);
        let sat = &wher.children[0];
        assert_eq!(sat.stats.pivots, 4);
        assert_eq!(sat.events.len(), 1);
        assert_eq!(wher.self_stats().pivots, 2);
        assert_eq!(t.summed_self_stats().pivots, 6);
        assert_eq!(t.span_count(), 4);
        assert_eq!(t.dropped_spans, 0);
        // Children nest inside their parents in time.
        t.root.walk(&mut |s, _| {
            for ch in &s.children {
                assert!(ch.start >= s.start);
                assert!(ch.end() <= s.end());
            }
        });
    }

    #[test]
    fn unbalanced_spans_are_closed_by_finish() {
        let mut c = Collector::new("q", 0);
        c.enter(SpanKind::Where, "w".into(), None, stats(0));
        c.enter(SpanKind::SatCheck, "s".into(), None, stats(0));
        let t = c.finish(stats(9));
        assert_eq!(t.span_count(), 3);
        assert_eq!(t.total_stats().pivots, 9);
        assert_eq!(t.summed_self_stats().pivots, 9);
    }

    #[test]
    fn worker_subtrees_graft_with_tids_and_partition_stats() {
        let mut main = Collector::new("q", 2);
        main.enter(SpanKind::Where, "w".into(), None, stats(0));
        // Two workers measured against the same origin; their local stats
        // are deltas, absorbed by the parent context before the Where span
        // closes (mirrored here by exiting with the merged total).
        let mut w0 = Collector::worker(main.origin(), 2, "worker 0");
        w0.enter(SpanKind::SatCheck, "s".into(), None, stats(0));
        w0.exit(stats(3));
        let (s0, d0) = w0.finish_subtree(stats(3));
        let w1 = Collector::worker(main.origin(), 3, "worker 1");
        let (s1, d1) = w1.finish_subtree(stats(4));
        assert_eq!(s0.tid, 2);
        assert_eq!(s0.children[0].tid, 2);
        assert_eq!(s1.tid, 3);
        assert_eq!(s0.stats.pivots, 3);
        main.attach_subtree(s0, d0);
        main.attach_subtree(s1, d1);
        main.exit(stats(7));
        let t = main.finish(stats(7));
        assert_eq!(t.root.tid, crate::model::MAIN_TID);
        assert_eq!(t.distinct_tids(), vec![1, 2, 3]);
        let wher = &t.root.children[0];
        assert_eq!(wher.children.len(), 2);
        // The workers' inclusive deltas partition the Where span's delta;
        // nothing is counted twice, nothing lost.
        assert_eq!(wher.self_stats().pivots, 0);
        assert_eq!(t.summed_self_stats().pivots, 7);
        // Worker subtrees still nest in time inside their parent span.
        assert!(wher.children.iter().all(|c| c.start >= wher.start));
        assert!(wher.children.iter().all(|c| c.end() <= wher.end()));
        // And the Chrome export carries one track per tid.
        let text = crate::chrome::to_chrome_trace(&t);
        assert!(crate::chrome::validate_chrome_trace(&text).is_ok());
    }

    #[test]
    fn attach_over_cap_folds_into_dropped() {
        let mut main = Collector::new("q", 0);
        for _ in 0..(Collector::MAX_SPANS - 1) {
            main.enter(SpanKind::SatCheck, "s".into(), None, stats(0));
            main.exit(stats(0));
        }
        let mut w = Collector::worker(main.origin(), 2, "worker 0");
        w.enter(SpanKind::SatCheck, "s".into(), None, stats(0));
        w.exit(stats(0));
        let (sub, d) = w.finish_subtree(stats(0));
        main.attach_subtree(sub, d);
        let t = main.finish(stats(0));
        assert_eq!(t.span_count(), Collector::MAX_SPANS);
        assert_eq!(t.dropped_spans, 2, "folded worker subtree is counted");
    }

    #[test]
    fn cap_suppresses_but_keeps_balance() {
        let mut c = Collector::new("q", 0);
        for _ in 0..(Collector::MAX_SPANS + 10) {
            c.enter(SpanKind::SatCheck, "s".into(), None, stats(0));
            c.exit(stats(0));
        }
        assert_eq!(c.depth(), 1);
        let t = c.finish(stats(1));
        assert_eq!(t.dropped_spans, 11);
        assert_eq!(t.span_count(), Collector::MAX_SPANS);
        // The suppressed spans' work is still in the root's delta.
        assert_eq!(t.summed_self_stats().pivots, 1);
    }
}
