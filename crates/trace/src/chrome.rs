//! The Chrome trace-event sink.
//!
//! Serializes a [`Trace`] as the Trace Event Format's JSON object form
//! (`{"traceEvents": [...]}`): one complete (`"ph": "X"`) event per span
//! with microsecond `ts`/`dur`, and one instant (`"ph": "i"`) event per
//! structured [`TraceEvent`](crate::model::TraceEvent). The output loads
//! in `chrome://tracing` and
//! in Perfetto's legacy-trace importer. Spans carry their source byte
//! range and nonzero self counter deltas in `args`, so the counters are
//! inspectable from the flame view.

use crate::json::Json;
use crate::model::{Trace, TraceSpan};
use std::time::Duration;

fn us(d: Duration) -> Json {
    Json::Num(d.as_secs_f64() * 1e6)
}

fn span_event(span: &TraceSpan) -> Json {
    let name = if span.label.is_empty() {
        span.kind.name().to_string()
    } else {
        format!("{} {}", span.kind.name(), span.label)
    };
    let mut args: Vec<(String, Json)> = Vec::new();
    if let Some((a, b)) = span.source {
        args.push(("src_start".into(), Json::int(a as u64)));
        args.push(("src_end".into(), Json::int(b as u64)));
    }
    if let Some(node) = span.node {
        args.push(("plan_node".into(), Json::int(node as u64)));
    }
    for (counter, value) in span.self_stats().nonzero_counters() {
        args.push((counter.to_string(), Json::int(value)));
    }
    Json::obj([
        ("name", Json::str(name)),
        ("cat", Json::str(span.kind.name())),
        ("ph", Json::str("X")),
        ("ts", us(span.start)),
        ("dur", us(span.duration)),
        ("pid", Json::int(1)),
        ("tid", Json::int(span.tid as u64)),
        ("args", Json::Obj(args)),
    ])
}

/// Serialize the trace to a Chrome trace-event JSON document.
pub fn to_chrome_trace(trace: &Trace) -> String {
    let mut events: Vec<Json> = Vec::with_capacity(trace.span_count());
    trace.root.walk(&mut |span, _| {
        events.push(span_event(span));
        for e in &span.events {
            events.push(Json::obj([
                ("name", Json::str(e.kind.label())),
                ("ph", Json::str("i")),
                ("ts", us(e.at)),
                ("s", Json::str("t")),
                ("pid", Json::int(1)),
                ("tid", Json::int(span.tid as u64)),
            ]));
        }
    });
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
    .to_string()
}

/// Structural validation of a Chrome trace-event document, shared by the
/// test suite and the `validate_trace` CI smoke binary: the document must
/// parse, expose a non-empty `traceEvents` array, and every event must
/// carry `name`/`ph`/`ts`/`pid`/`tid` (with `ts` and `tid` numeric), with
/// complete (`"X"`) events also carrying a `dur`. Events may span any
/// number of distinct `tid`s — parallel evaluation exports one track per
/// worker thread. Returns the number of events on success.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = crate::json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    for (i, e) in events.iter().enumerate() {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if e.get(key).is_none() {
                return Err(format!("event {i} lacks {key}"));
            }
        }
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or_default();
        if ph == "X" && e.get("dur").and_then(Json::as_f64).is_none() {
            return Err(format!("complete event {i} lacks dur"));
        }
        if e.get("ts").and_then(Json::as_f64).is_none() {
            return Err(format!("event {i} has a non-numeric ts"));
        }
        if e.get("tid").and_then(Json::as_f64).is_none() {
            return Err(format!("event {i} has a non-numeric tid"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::Collector;
    use crate::model::{EventKind, SpanKind};
    use crate::stats::EngineStats;

    #[test]
    fn export_validates_and_nests() {
        let mut c = Collector::new("q", 4);
        c.enter(
            SpanKind::Where,
            "w".into(),
            Some((1, 3)),
            EngineStats::default(),
        );
        c.event(EventKind::BudgetThreshold {
            resource: "simplex pivots",
            percent: 50,
            consumed: 51,
            limit: 100,
        });
        let after = EngineStats {
            pivots: 51,
            ..Default::default()
        };
        c.exit(after);
        let text = to_chrome_trace(&c.finish(after));
        // 2 spans + 1 instant event.
        assert_eq!(validate_chrome_trace(&text), Ok(3));
        let doc = crate::json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let where_ev = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("where"))
            .expect("where span exported");
        assert_eq!(
            where_ev
                .get("args")
                .and_then(|a| a.get("pivots"))
                .and_then(Json::as_f64),
            Some(51.0)
        );
        assert_eq!(
            where_ev
                .get("args")
                .and_then(|a| a.get("src_start"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        let instant = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .expect("instant event exported");
        assert!(instant
            .get("name")
            .and_then(Json::as_str)
            .unwrap()
            .contains("budget 50% crossed"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": []}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\": [{\"ph\": \"X\"}]}")
                .unwrap_err()
                .contains("lacks"),
        );
    }
}
