//! The aggregation sink: fold one or more traces into per-site totals.
//!
//! A "site" is a `(kind, label, source range)` triple — e.g. *every*
//! `sat_check` of the same WHERE predicate across all bindings groups into
//! one row. The bench `report` binary's `e10` hot-span table is built on
//! this, and the REPL's `:profile` prints the top rows for queries whose
//! full tree would scroll.

use crate::model::{SpanKind, Trace, TraceSpan};
use crate::stats::EngineStats;
use std::collections::BTreeMap;
use std::time::Duration;

/// Aggregated totals for one span site across one or more traces.
#[derive(Debug, Clone)]
pub struct HotSpan {
    /// The site's span kind.
    pub kind: SpanKind,
    /// The site's label.
    pub label: String,
    /// The site's source byte range, when attributed.
    pub source: Option<(usize, usize)>,
    /// How many spans folded into this row.
    pub count: u64,
    /// Summed inclusive wall-clock.
    pub total: Duration,
    /// Summed exclusive (self) wall-clock — the hot-path metric.
    pub self_time: Duration,
    /// Summed exclusive counter deltas.
    pub stats: EngineStats,
}

impl HotSpan {
    /// This site's share of `total_duration`, in percent, by self time.
    pub fn percent_of(&self, total_duration: Duration) -> f64 {
        if total_duration.is_zero() {
            return 0.0;
        }
        100.0 * self.self_time.as_secs_f64() / total_duration.as_secs_f64()
    }
}

/// Group every span of every trace by `(kind, label, source)` and sum
/// counts, durations, and counter deltas. Rows are sorted by descending
/// self time — the first row is the hot path.
pub fn hot_spans<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> Vec<HotSpan> {
    type Key = (SpanKind, String, Option<(usize, usize)>);
    let mut groups: BTreeMap<Key, HotSpan> = BTreeMap::new();
    for trace in traces {
        trace.root.walk(&mut |span: &TraceSpan, _| {
            let key = (span.kind, span.label.clone(), span.source);
            let row = groups.entry(key).or_insert_with(|| HotSpan {
                kind: span.kind,
                label: span.label.clone(),
                source: span.source,
                count: 0,
                total: Duration::ZERO,
                self_time: Duration::ZERO,
                stats: EngineStats::default(),
            });
            row.count += 1;
            row.total += span.duration;
            row.self_time += span.self_time();
            row.stats.absorb(&span.self_stats());
        });
    }
    let mut rows: Vec<HotSpan> = groups.into_values().collect();
    rows.sort_by(|a, b| b.self_time.cmp(&a.self_time).then(a.label.cmp(&b.label)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::Collector;
    use crate::model::SpanKind;

    fn stats(pivots: u64) -> EngineStats {
        EngineStats {
            pivots,
            ..Default::default()
        }
    }

    #[test]
    fn groups_by_site_and_sums() {
        let mut c = Collector::new("q", 0);
        for i in 0..3u64 {
            c.enter(
                SpanKind::SatCheck,
                "sat".into(),
                Some((4, 9)),
                stats(i * 10),
            );
            c.exit(stats(i * 10 + 7));
        }
        c.enter(SpanKind::SatCheck, "sat".into(), Some((12, 20)), stats(27));
        c.exit(stats(30));
        let t = c.finish(stats(30));

        let rows = hot_spans([&t]);
        // Root + two sat sites (4..9 grouped over 3 bindings, 12..20 once).
        assert_eq!(rows.len(), 3);
        let grouped = rows
            .iter()
            .find(|r| r.source == Some((4, 9)))
            .expect("grouped site");
        assert_eq!(grouped.count, 3);
        assert_eq!(grouped.stats.pivots, 21);
        let single = rows.iter().find(|r| r.source == Some((12, 20))).unwrap();
        assert_eq!(single.count, 1);
        assert_eq!(single.stats.pivots, 3);
        // Self stats across all rows sum to the aggregate.
        let summed: u64 = rows.iter().map(|r| r.stats.pivots).sum();
        assert_eq!(summed, 30);
    }
}
