//! Monotonic work counters for one engine context.
//!
//! [`EngineStats`] is defined here (rather than in `lyric-engine`, which
//! re-exports it) so that trace spans can carry typed counter deltas
//! without a dependency cycle: `lyric-trace` is the bottom of the
//! telemetry stack, `lyric-engine` builds the thread-local context on top
//! of it.

use std::fmt;

/// Monotonic work counters for one engine context. All counters are
/// cumulative over the context's lifetime; `lyric_engine::snapshot` reads
/// them out mid-run, and trace spans store start/stop differences
/// (see [`EngineStats::delta_since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Simplex pivot steps performed.
    pub pivots: u64,
    /// Number of simplex solves (phase-1/phase-2 runs counted once each).
    pub lp_runs: u64,
    /// Variables eliminated by Fourier–Motzkin / equality substitution.
    pub eliminations: u64,
    /// Atoms produced by FM elimination products.
    pub fm_atoms: u64,
    /// Disjuncts produced by DNF `and`/`negate` products.
    pub disjuncts_produced: u64,
    /// Disjuncts discarded as unsatisfiable or subsumed by simplification.
    pub disjuncts_pruned: u64,
    /// Conjunction satisfiability checks requested.
    pub sat_checks: u64,
    /// Entailment (`implies_atom`) checks requested.
    pub entailment_checks: u64,
    /// Rational ops completed on the inline small-integer fast path.
    pub arith_small_ops: u64,
    /// Rational ops that ran on the arbitrary-precision `BigInt` path.
    pub arith_big_ops: u64,
    /// Small-path ops whose result overflowed `i64` and promoted.
    pub arith_promotions: u64,
    /// Logical bytes placed in recycled arena buffers (tableau rows, FM
    /// bound lists). Deterministic: counts requested sizes, not retained
    /// capacity.
    pub arena_bytes: u64,
    /// Memo-cache hits across the sat/entailment caches.
    pub cache_hits: u64,
    /// Memo-cache misses (an actual solve was performed and stored).
    pub cache_misses: u64,
    /// Interval-box disjointness tests performed before LP calls.
    pub box_checks: u64,
    /// Box checks that proved emptiness and skipped the LP entirely.
    pub box_prunes: u64,
    /// Store-index probes answered (scalar equality/range lookups and
    /// bounding-box intersections) while planning FROM bindings.
    pub index_probes: u64,
    /// Extent members discarded by index probes before instantiation.
    pub index_pruned: u64,
}

/// The counter fields of [`EngineStats`], in declaration order, paired
/// with their snake_case names. Sinks iterate this instead of hard-coding
/// the field list, so a new counter propagates to every sink.
pub const COUNTER_NAMES: [&str; 18] = [
    "pivots",
    "lp_runs",
    "eliminations",
    "fm_atoms",
    "disjuncts_produced",
    "disjuncts_pruned",
    "sat_checks",
    "entailment_checks",
    "arith_small_ops",
    "arith_big_ops",
    "arith_promotions",
    "arena_bytes",
    "cache_hits",
    "cache_misses",
    "box_checks",
    "box_prunes",
    "index_probes",
    "index_pruned",
];

impl EngineStats {
    /// Cache hit rate in `[0, 1]`, or `None` when no cacheable check ran.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Fraction of counted rational ops that ran on the inline small-int
    /// path, or `None` when no arithmetic was counted.
    pub fn arith_small_hit_rate(&self) -> Option<f64> {
        let total = self.arith_small_ops + self.arith_big_ops;
        (total > 0).then(|| self.arith_small_ops as f64 / total as f64)
    }

    /// The counters describing the query's *semantic* work: everything
    /// except the three arithmetic-path counters, which legitimately
    /// differ between the small-int fast path and the all-`BigInt`
    /// baseline (`arena_bytes` stays — it is mode-independent).
    /// Differential tests compare these across arithmetic modes.
    pub fn semantic(&self) -> EngineStats {
        EngineStats {
            arith_small_ops: 0,
            arith_big_ops: 0,
            arith_promotions: 0,
            ..*self
        }
    }

    /// The counters that are invariant under interval-box pruning: the
    /// check tallies (`sat_checks`, `entailment_checks`) and the DNF/FM
    /// production counters, which are driven by *answers*, not by how the
    /// answers were obtained. Everything implementation-dependent —
    /// LP effort (`pivots`, `lp_runs`), cache traffic, arena bytes, the
    /// arithmetic-path split, and the box and index counters themselves —
    /// is zeroed. The box-pruning differential compares these with
    /// `boxes` on vs off.
    pub fn prune_invariant(&self) -> EngineStats {
        EngineStats {
            pivots: 0,
            lp_runs: 0,
            arith_small_ops: 0,
            arith_big_ops: 0,
            arith_promotions: 0,
            arena_bytes: 0,
            cache_hits: 0,
            cache_misses: 0,
            box_checks: 0,
            box_prunes: 0,
            index_probes: 0,
            index_pruned: 0,
            ..*self
        }
    }

    /// Merge counters from another snapshot (used when aggregating
    /// per-query stats into a report).
    pub fn absorb(&mut self, other: &EngineStats) {
        for (mine, theirs) in self.counters_mut().into_iter().zip(other.counters()) {
            *mine += theirs;
        }
    }

    /// The counters consumed since `earlier` (an older snapshot of the
    /// same monotonic context). Saturating, so a mismatched pair degrades
    /// to zeros instead of wrapping.
    pub fn delta_since(&self, earlier: &EngineStats) -> EngineStats {
        let mut out = *self;
        for (mine, theirs) in out.counters_mut().into_iter().zip(earlier.counters()) {
            *mine = mine.saturating_sub(theirs);
        }
        out
    }

    /// All counters, in [`COUNTER_NAMES`] order.
    pub fn counters(&self) -> [u64; 18] {
        [
            self.pivots,
            self.lp_runs,
            self.eliminations,
            self.fm_atoms,
            self.disjuncts_produced,
            self.disjuncts_pruned,
            self.sat_checks,
            self.entailment_checks,
            self.arith_small_ops,
            self.arith_big_ops,
            self.arith_promotions,
            self.arena_bytes,
            self.cache_hits,
            self.cache_misses,
            self.box_checks,
            self.box_prunes,
            self.index_probes,
            self.index_pruned,
        ]
    }

    fn counters_mut(&mut self) -> [&mut u64; 18] {
        [
            &mut self.pivots,
            &mut self.lp_runs,
            &mut self.eliminations,
            &mut self.fm_atoms,
            &mut self.disjuncts_produced,
            &mut self.disjuncts_pruned,
            &mut self.sat_checks,
            &mut self.entailment_checks,
            &mut self.arith_small_ops,
            &mut self.arith_big_ops,
            &mut self.arith_promotions,
            &mut self.arena_bytes,
            &mut self.cache_hits,
            &mut self.cache_misses,
            &mut self.box_checks,
            &mut self.box_prunes,
            &mut self.index_probes,
            &mut self.index_pruned,
        ]
    }

    /// `(name, value)` pairs for the counters that are nonzero — the
    /// compact form sinks print for per-span deltas.
    pub fn nonzero_counters(&self) -> Vec<(&'static str, u64)> {
        COUNTER_NAMES
            .into_iter()
            .zip(self.counters())
            .filter(|(_, v)| *v > 0)
            .collect()
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.counters().iter().all(|v| *v == 0)
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pivots={} lp_runs={} eliminations={} fm_atoms={} \
             disjuncts={}(+{} pruned) sat_checks={} entailment_checks={} \
             arith_ops={}small/{}big(+{} promoted) arena_bytes={} \
             box_checks={}(-{} pruned) index_probes={}(-{} pruned) \
             cache_hits={} cache_misses={} cache_hit_rate={}",
            self.pivots,
            self.lp_runs,
            self.eliminations,
            self.fm_atoms,
            self.disjuncts_produced,
            self.disjuncts_pruned,
            self.sat_checks,
            self.entailment_checks,
            self.arith_small_ops,
            self.arith_big_ops,
            self.arith_promotions,
            self.arena_bytes,
            self.box_checks,
            self.box_prunes,
            self.index_probes,
            self.index_pruned,
            self.cache_hits,
            self.cache_misses,
            match self.cache_hit_rate() {
                Some(r) => format!("{:.1}%", r * 100.0),
                None => "n/a".to_string(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format_is_pinned() {
        let stats = EngineStats {
            pivots: 31,
            lp_runs: 4,
            eliminations: 2,
            fm_atoms: 12,
            disjuncts_produced: 5,
            disjuncts_pruned: 1,
            sat_checks: 3,
            entailment_checks: 1,
            arith_small_ops: 90,
            arith_big_ops: 10,
            arith_promotions: 2,
            arena_bytes: 4096,
            cache_hits: 3,
            cache_misses: 1,
            box_checks: 4,
            box_prunes: 2,
            index_probes: 6,
            index_pruned: 5,
        };
        assert_eq!(
            stats.to_string(),
            "pivots=31 lp_runs=4 eliminations=2 fm_atoms=12 \
             disjuncts=5(+1 pruned) sat_checks=3 entailment_checks=1 \
             arith_ops=90small/10big(+2 promoted) arena_bytes=4096 \
             box_checks=4(-2 pruned) index_probes=6(-5 pruned) \
             cache_hits=3 cache_misses=1 cache_hit_rate=75.0%"
        );
        assert_eq!(stats.arith_small_hit_rate(), Some(0.9));
    }

    #[test]
    fn prune_invariant_keeps_answer_driven_counters() {
        let stats = EngineStats {
            pivots: 31,
            lp_runs: 4,
            sat_checks: 3,
            entailment_checks: 1,
            fm_atoms: 12,
            box_checks: 3,
            box_prunes: 1,
            cache_hits: 2,
            arena_bytes: 64,
            index_probes: 2,
            index_pruned: 9,
            ..Default::default()
        };
        let inv = stats.prune_invariant();
        assert_eq!(inv.sat_checks, 3);
        assert_eq!(inv.entailment_checks, 1);
        assert_eq!(inv.fm_atoms, 12);
        assert_eq!(inv.pivots, 0);
        assert_eq!(inv.lp_runs, 0);
        assert_eq!(inv.box_checks, 0);
        assert_eq!(inv.box_prunes, 0);
        assert_eq!(inv.cache_hits, 0);
        assert_eq!(inv.arena_bytes, 0);
        assert_eq!(inv.index_probes, 0);
        assert_eq!(inv.index_pruned, 0);
    }

    #[test]
    fn display_without_cache_probes_says_na() {
        let stats = EngineStats::default();
        assert!(stats.to_string().ends_with("cache_hit_rate=n/a"));
        assert!(stats.to_string().contains("cache_misses=0"));
    }

    #[test]
    fn delta_since_subtracts_per_counter() {
        let later = EngineStats {
            pivots: 10,
            cache_hits: 4,
            ..Default::default()
        };
        let earlier = EngineStats {
            pivots: 7,
            cache_hits: 1,
            ..Default::default()
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.pivots, 3);
        assert_eq!(d.cache_hits, 3);
        assert_eq!(d.lp_runs, 0);
        // Saturates instead of wrapping on mismatched snapshots.
        assert_eq!(earlier.delta_since(&later).pivots, 0);
    }

    #[test]
    fn absorb_matches_counter_list() {
        let mut acc = EngineStats::default();
        let one = EngineStats {
            fm_atoms: 2,
            entailment_checks: 5,
            ..Default::default()
        };
        acc.absorb(&one);
        acc.absorb(&one);
        assert_eq!(acc.fm_atoms, 4);
        assert_eq!(acc.entailment_checks, 10);
        assert_eq!(
            acc.nonzero_counters(),
            vec![("fm_atoms", 4), ("entailment_checks", 10)]
        );
        assert!(!acc.is_zero());
        assert!(EngineStats::default().is_zero());
    }
}
