//! The trace data model: span taxonomy, structured events, and the
//! finished span tree.

use crate::stats::EngineStats;
use std::time::Duration;

/// The evaluation phase a span measures. One variant per phase of the
/// pipeline, top (whole query) to bottom (a single simplex run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// The whole statement, root of every trace.
    Query,
    /// Tokenization of the source text.
    Lex,
    /// Parsing the token stream into the AST.
    Parse,
    /// The static-analysis admission gate.
    Analyze,
    /// Enumerating the extent bindings of one FROM item.
    FromBind,
    /// Filtering the binding set through the whole WHERE clause.
    Where,
    /// One satisfiability predicate (`(φ)` in WHERE) on one binding.
    SatCheck,
    /// One entailment predicate (`φ |= ψ`) on one binding.
    EntailCheck,
    /// One comparison predicate (`=`, `<`, `CONTAINS`, …) on one binding.
    Compare,
    /// One path predicate (`X.drawer[Y]`) on one binding.
    PathPred,
    /// Evaluating one SELECT item on one binding.
    SelectItem,
    /// Instantiating a CST formula as a constraint object.
    Instantiate,
    /// A `MAX/MIN/MAX_POINT/MIN_POINT … SUBJECT TO` operator.
    Optimize,
    /// One simplex run (feasibility or optimization).
    LpSolve,
    /// One Fourier–Motzkin / equality-substitution variable elimination.
    FmEliminate,
    /// Materializing a `CREATE VIEW` result into the database.
    ViewMaterialize,
    /// One worker thread's share of a parallel region; its children are
    /// the spans recorded on that thread.
    Worker,
}

impl SpanKind {
    /// Stable snake_case name, used by every sink.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Lex => "lex",
            SpanKind::Parse => "parse",
            SpanKind::Analyze => "analyze",
            SpanKind::FromBind => "from_bind",
            SpanKind::Where => "where",
            SpanKind::SatCheck => "sat_check",
            SpanKind::EntailCheck => "entail_check",
            SpanKind::Compare => "compare",
            SpanKind::PathPred => "path_pred",
            SpanKind::SelectItem => "select_item",
            SpanKind::Instantiate => "instantiate",
            SpanKind::Optimize => "optimize",
            SpanKind::LpSolve => "lp_solve",
            SpanKind::FmEliminate => "fm_eliminate",
            SpanKind::ViewMaterialize => "view_materialize",
            SpanKind::Worker => "worker",
        }
    }
}

/// A structured event attached to the span that was open when it fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A sat/entailment memo-cache probe answered from the cache.
    CacheHit,
    /// A memo-cache probe that fell through to an actual solve.
    CacheMiss,
    /// Canonicalization dropped `count` infeasible/duplicate disjuncts.
    DisjunctsPruned {
        /// How many disjuncts were discarded.
        count: u64,
    },
    /// A DNF conjunction distributed a `left × right` disjunct product.
    DnfProduct {
        /// Disjuncts on the left operand.
        left: usize,
        /// Disjuncts on the right operand.
        right: usize,
    },
    /// An interval-box disjointness test proved a conjunction empty and
    /// skipped the LP solve entirely.
    BoxPrune,
    /// A store-index probe filtered one FROM extent before binding.
    IndexProbe {
        /// Extent members examined by the probe.
        candidates: u64,
        /// Members discarded without instantiation.
        pruned: u64,
    },
    /// Consumption of a budgeted resource crossed `percent`% of its limit.
    BudgetThreshold {
        /// The resource's display name (`lyric_engine::Resource::name`).
        resource: &'static str,
        /// The threshold crossed: 50 or 90.
        percent: u8,
        /// Units consumed when the crossing was observed.
        consumed: u64,
        /// The configured limit.
        limit: u64,
    },
}

impl EventKind {
    /// Short label for renderers.
    pub fn label(&self) -> String {
        match self {
            EventKind::CacheHit => "cache hit".into(),
            EventKind::CacheMiss => "cache miss".into(),
            EventKind::DisjunctsPruned { count } => format!("{count} disjuncts pruned"),
            EventKind::DnfProduct { left, right } => format!("dnf product {left}x{right}"),
            EventKind::BoxPrune => "box prune".into(),
            EventKind::IndexProbe { candidates, pruned } => {
                format!("index probe {pruned}/{candidates} pruned")
            }
            EventKind::BudgetThreshold {
                resource,
                percent,
                consumed,
                limit,
            } => format!("budget {percent}% crossed: {resource} {consumed}/{limit}"),
        }
    }
}

/// An event plus when it fired, as an offset from the trace origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Offset from the trace origin.
    pub at: Duration,
    /// What happened.
    pub kind: EventKind,
}

/// Thread id of the coordinating (query) thread in exported traces.
pub const MAIN_TID: u32 = 1;

/// One finished span: a phase of the evaluation with its timing, source
/// attribution, counter delta, events, and child spans.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// The phase this span measures.
    pub kind: SpanKind,
    /// Logical thread id: [`MAIN_TID`] on the coordinating thread; worker
    /// subtrees of a parallel region carry their worker's id. Siblings
    /// with *different* tids ran concurrently and may overlap in time;
    /// the nesting invariant (disjoint, ordered siblings) holds per tid.
    pub tid: u32,
    /// Human label (variable/class names, column name, LP direction, …).
    pub label: String,
    /// Byte range of the source fragment this span evaluates, when known.
    pub source: Option<(usize, usize)>,
    /// Start, as an offset from the trace origin.
    pub start: Duration,
    /// Wall-clock duration (inclusive of children).
    pub duration: Duration,
    /// [`EngineStats`] delta consumed inside this span, children included.
    pub stats: EngineStats,
    /// Events that fired while this span was the innermost open one.
    pub events: Vec<TraceEvent>,
    /// Child spans, in execution order.
    pub children: Vec<TraceSpan>,
    /// The explain-plan node this span is attributed to, when the query
    /// ran under `execute_explained`. Spans without a node id (engine
    /// internals such as LP solves, or anything below the instrumented
    /// operator sites) are attributed to their nearest annotated ancestor
    /// by [`crate::plan::analyze`]; `None` everywhere on plain traces.
    pub node: Option<u32>,
}

impl TraceSpan {
    /// End offset (`start + duration`).
    pub fn end(&self) -> Duration {
        self.start + self.duration
    }

    /// The *exclusive* counter delta: this span's consumption minus its
    /// children's. Summing `self_stats` over a whole tree reproduces the
    /// root's inclusive delta exactly (counters are monotonic and child
    /// intervals are disjoint sub-intervals of the parent).
    pub fn self_stats(&self) -> EngineStats {
        let mut inherited = EngineStats::default();
        for c in &self.children {
            inherited.absorb(&c.stats);
        }
        self.stats.delta_since(&inherited)
    }

    /// The *exclusive* wall-clock time: duration minus children durations
    /// (saturating, for robustness against clock granularity).
    pub fn self_time(&self) -> Duration {
        let inherited: Duration = self.children.iter().map(|c| c.duration).sum();
        self.duration.saturating_sub(inherited)
    }

    /// Number of spans in this subtree, itself included.
    pub fn tree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(TraceSpan::tree_size)
            .sum::<usize>()
    }

    /// Visit every span in the subtree, depth-first, with its depth.
    pub fn walk(&self, f: &mut impl FnMut(&TraceSpan, usize)) {
        fn go(s: &TraceSpan, depth: usize, f: &mut impl FnMut(&TraceSpan, usize)) {
            f(s, depth);
            for c in &s.children {
                go(c, depth + 1, f);
            }
        }
        go(self, 0, f);
    }
}

/// A finished trace: the root [`TraceSpan`] (always [`SpanKind::Query`])
/// plus collection metadata.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The root span; its `stats` are the query's aggregate counters and
    /// its `duration` the whole evaluation wall-clock.
    pub root: TraceSpan,
    /// Spans not recorded because the collector's cap was reached. Their
    /// time and counters are still absorbed by their recorded ancestors.
    pub dropped_spans: u64,
}

impl Trace {
    /// The query's aggregate counters (the root span's inclusive delta).
    pub fn total_stats(&self) -> &EngineStats {
        &self.root.stats
    }

    /// Total evaluation wall-clock.
    pub fn total_duration(&self) -> Duration {
        self.root.duration
    }

    /// Number of recorded spans.
    pub fn span_count(&self) -> usize {
        self.root.tree_size()
    }

    /// Sum of [`TraceSpan::self_stats`] over every recorded span. Always
    /// equals `total_stats()` — the well-formedness invariant the property
    /// suite pins.
    pub fn summed_self_stats(&self) -> EngineStats {
        let mut acc = EngineStats::default();
        self.root.walk(&mut |s, _| acc.absorb(&s.self_stats()));
        acc
    }

    /// The distinct thread ids appearing anywhere in the tree, sorted.
    /// `[MAIN_TID]` for a serial trace; parallel regions add one id per
    /// worker that recorded spans.
    pub fn distinct_tids(&self) -> Vec<u32> {
        let mut tids = std::collections::BTreeSet::new();
        self.root.walk(&mut |s, _| {
            tids.insert(s.tid);
        });
        tids.into_iter().collect()
    }
}
