//! CI smoke validator for exported Chrome trace-event files.
//!
//! ```sh
//! cargo run -p lyric-trace --bin validate_trace -- trace.json
//! ```
//!
//! Exits 0 when the file is a structurally valid Chrome trace (parses as
//! JSON, non-empty `traceEvents`, every event carries the required
//! fields); exits 1 with a diagnostic otherwise.

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_trace <trace.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match lyric_trace::chrome::validate_chrome_trace(&text) {
        Ok(n) => {
            println!("{path}: valid chrome trace with {n} events");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_trace: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
