//! A minimal JSON document model with a writer and a validating parser.
//!
//! The workspace builds offline with no external crates (see DESIGN.md
//! §5), so serde is out of reach; this module is the shared hand-rolled
//! substitute. It is used by the Chrome trace exporter, the bench
//! `report` binary's `BENCH_report.json`, and the CI smoke validator
//! (`validate_trace`), which parses exported traces back to prove they
//! are structurally loadable.
//!
//! The model is deliberately small: numbers are `f64` (every value we
//! serialize — counters, microsecond timestamps — fits well inside the
//! 2^53 exact-integer range), and object keys keep insertion order.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (integers are written without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for |n| ≤ 2^53).
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, when this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, when this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Json::obj([
            ("name", Json::str("q1 \"drawer\"\nextents")),
            ("ts", Json::int(12)),
            ("ratio", Json::Num(0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "rows",
                Json::Arr(vec![Json::int(1), Json::str("two"), Json::Arr(vec![])]),
            ),
        ]);
        let text = doc.to_string();
        let back = parse(&text).expect("own output parses");
        assert_eq!(back, doc);
        assert_eq!(back.get("ts").and_then(Json::as_f64), Some(12.0));
        assert_eq!(
            back.get("name").and_then(Json::as_str),
            Some("q1 \"drawer\"\nextents")
        );
        assert_eq!(
            back.get("rows").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn integers_are_written_without_fraction() {
        assert_eq!(Json::int(1_000_000).to_string(), "1000000");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parses_unicode_and_escapes() {
        let v = parse("\"caf\\u00e9 — ∧\"").expect("parses");
        assert_eq!(v.as_str(), Some("café — ∧"));
    }
}
