//! Per-query evaluation tracing for the LyriC constraint pipeline.
//!
//! The paper's tractability argument is *per syntactic family*: every
//! single LyriC operation is polynomial, but the real cost of a query is
//! dominated by where projection, DNF products, and LP solves land.
//! Aggregate counters ([`EngineStats`], carried by `lyric-engine`) say how
//! much work a query did; this crate says **where**. Each evaluation phase
//! (lex, parse, analyze, FROM-binding enumeration, per-predicate WHERE
//! checks, SELECT constraint construction, `MAX/MIN … SUBJECT TO` solves,
//! and the engine-level Fourier–Motzkin / simplex runs underneath them)
//! records a span in a hierarchical [`Trace`]; each span carries its
//! wall-clock duration, the byte range of the source fragment it
//! evaluates, and the delta of [`EngineStats`] counters consumed inside
//! it. Structured [`TraceEvent`]s (cache hit/miss, disjuncts pruned,
//! budget consumption crossing 50/90%) attach to the enclosing span.
//!
//! Three sinks consume a trace:
//!
//! * [`render::render_tree`] — a human-readable indented tree with
//!   per-span hot-path percentages (the REPL's `:profile` output);
//! * [`chrome::to_chrome_trace`] — a Chrome trace-event JSON document
//!   loadable in `chrome://tracing` or Perfetto (hand-rolled via
//!   [`json`], honouring the workspace's no-external-deps constraint);
//! * [`agg::hot_spans`] — grouped per-site totals, used by the bench
//!   `report` binary's hot-span table.
//!
//! This crate is deliberately dependency-free and engine-agnostic: it
//! defines the data model and the sinks. `lyric-engine` owns the
//! thread-local context that decides *when* a [`collect::Collector`] is
//! installed and feeds it stats snapshots; when no collector is installed
//! tracing costs nothing.

#![warn(missing_docs)]

pub mod agg;
pub mod chrome;
pub mod collect;
pub mod json;
pub mod model;
pub mod plan;
pub mod render;
pub mod stats;

pub use agg::{hot_spans, HotSpan};
pub use chrome::to_chrome_trace;
pub use collect::Collector;
pub use json::Json;
pub use model::{EventKind, SpanKind, Trace, TraceEvent, TraceSpan, MAIN_TID};
pub use plan::{NodeObs, PlanAnalysis, PlanNode};
pub use render::render_tree;
pub use stats::EngineStats;
