//! Quickstart: the paper's Figure 2 database and §4.1 queries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lyric::{execute, paper_example};

fn main() {
    // The office-design database of Figures 1 and 2: a desk and a file
    // cabinet in a room, each with constraint-valued spatial attributes.
    let mut db = paper_example::database();

    println!("== LyriC quickstart: the paper's office-design database ==\n");

    // Plain XSQL: path expressions and comparisons. (`inv_number` lives
    // on Object_In_Room, not on the catalog object.)
    let res = execute(
        &mut db,
        "SELECT X.name, O.inv_number
         FROM Office_Object X, Object_In_Room O
         WHERE O.catalog_object[X] AND O.inv_number[N] AND X.name[M]",
    );
    // (simpler form below; the above shows selector binding)
    drop(res);
    let res = execute(&mut db, "SELECT O.inv_number FROM Object_In_Room O").unwrap();
    println!("room inventory:\n{res}");

    // Constraint objects are first-class query answers: retrieve the
    // drawer extent of every desk as a logical oid.
    let res = execute(&mut db, "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]").unwrap();
    println!("drawer extents (constraint oids):\n{res}");

    // The paper's flagship example: translate each catalog object's extent
    // into room coordinates, assuming its center is at (6, 4). Variables
    // are copied from the schema, so the coordinate-system equations join
    // implicitly — the answer for the desk simplifies to
    // ((u,v) | 2 <= u <= 10 ∧ 2 <= v <= 6), as printed in the paper.
    let res = execute(
        &mut db,
        "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
         FROM Office_Object CO
         WHERE CO.extent[E] AND CO.translation[D]",
    )
    .unwrap();
    println!("extents in room coordinates with center (6,4):\n{res}");

    // Entailment (`|=`) filters on what must hold for EVERY point of a
    // constraint: desks whose drawer center is necessarily at p = 0.
    let res = execute(
        &mut db,
        "SELECT DSK FROM Desk DSK WHERE DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
    )
    .unwrap();
    println!(
        "desks with a centered drawer: {} (the standard desk's drawer is at p = -2)\n",
        res.rows.len()
    );

    // Linear programming, generalized to the database (§4.2): the extreme
    // values of w + z over each desk extent, and a point attaining them.
    let res = execute(
        &mut db,
        "SELECT D.name, MAX(w + z SUBJECT TO ((w,z) | E)),
                MAX_POINT(w + z SUBJECT TO ((w,z) | E))
         FROM Desk D WHERE D.extent[E]",
    )
    .unwrap();
    println!("LP over the desk extent:\n{res}");
}
