//! The chemical factory of §1.2: classical LP generalized to a database
//! of constraint objects.
//!
//! Each manufacturing process is a constraint object relating raw-material
//! consumption to product output. LyriC queries then answer the paper's
//! questions: what is the best process for an order? how much raw material
//! must be purchased? can the order be filled from inventory? what is the
//! connection among producible quantities?
//!
//! ```sh
//! cargo run --example factory_lp
//! ```

use lyric::execute;
use lyric_arith::Rational;
use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
use lyric_oodb::{AttrDef, AttrTarget, ClassDef, Database, Oid, Schema, Value};

/// Variables: m_acid, m_base (raw materials), p_solvent, p_resin
/// (products), run (the process run length).
fn process(
    acid_rate: i64,
    base_rate: i64,
    solvent_rate: i64,
    resin_rate: i64,
    capacity: i64,
) -> CstObject {
    let v = |n: &str| LinExpr::var(Var::new(n));
    let rate = |name: &str, r: i64| {
        Atom::eq(
            v(name),
            LinExpr::term(Var::new("run"), Rational::from_int(r)),
        )
    };
    CstObject::new(
        vec![
            Var::new("m_acid"),
            Var::new("m_base"),
            Var::new("p_solvent"),
            Var::new("p_resin"),
        ],
        [Conjunction::of([
            Atom::ge(v("run"), LinExpr::from(0)),
            Atom::le(v("run"), LinExpr::from(capacity)),
            rate("m_acid", acid_rate),
            rate("m_base", base_rate),
            rate("p_solvent", solvent_rate),
            rate("p_resin", resin_rate),
        ])],
    )
}

fn main() {
    let mut schema = Schema::new();
    schema
        .add_class(
            ClassDef::new("Process")
                .attr(AttrDef::scalar("name", AttrTarget::class("string")))
                .attr(AttrDef::scalar(
                    "constraint",
                    AttrTarget::cst(["m_acid", "m_base", "p_solvent", "p_resin"]),
                )),
        )
        .expect("schema");
    let mut db = Database::new(schema).expect("validates");

    // Three processes with different rates and capacities. Note the
    // constraint objects keep `run` existentially quantified: the paper's
    // lazy quantification at work.
    for (name, c) in [
        ("distillation", process(3, 1, 2, 0, 40)),
        ("polymerization", process(1, 2, 0, 1, 60)),
        ("combined", process(2, 2, 1, 1, 30)),
    ] {
        db.insert(
            Oid::named(name),
            "Process",
            [
                ("name", Value::Scalar(Oid::str(name))),
                ("constraint", Value::Scalar(Oid::cst(c))),
            ],
        )
        .expect("insert process");
    }

    println!("== Chemical factory (§1.2 LP application realm) ==\n");

    // Profit: solvent sells at 5, resin at 8; acid costs 1, base costs 1.
    // Stock: 80 units of acid, 90 of base.
    let profit = "5 * p_solvent + 8 * p_resin - m_acid - m_base";
    let stock = "m_acid <= 80 AND m_base <= 90";

    // 1. Best achievable profit per process (MAX … SUBJECT TO).
    let res = execute(
        &mut db,
        &format!(
            "SELECT P.name, MAX({profit} SUBJECT TO
                 ((m_acid,m_base,p_solvent,p_resin) | C AND {stock}))
             FROM Process P WHERE P.constraint[C]"
        ),
    )
    .expect("profit query");
    println!("best profit per process under stock limits:\n{res}");

    // 2. The operating point attaining it, per process.
    let res = execute(
        &mut db,
        &format!(
            "SELECT P.name, MAX_POINT({profit} SUBJECT TO
                 ((m_acid,m_base,p_solvent,p_resin) | C AND {stock}))
             FROM Process P WHERE P.constraint[C]"
        ),
    )
    .expect("operating point query");
    println!("optimal operating points:\n{res}");

    // 3. "Can an order be filled only by using raw materials in
    //    inventory?" — an order of 25 solvent: which processes have a
    //    satisfiable operating point?
    let res = execute(
        &mut db,
        &format!(
            "SELECT P.name FROM Process P WHERE P.constraint[C]
             AND (C AND {stock} AND p_solvent >= 25)"
        ),
    )
    .expect("order feasibility query");
    println!("processes able to fill an order of 25 solvent from stock:\n{res}");

    // 4. "What is the connection among the quantities of all products that
    //    can be produced?" — project each process onto the product space;
    //    the answer is itself a constraint object.
    let res = execute(
        &mut db,
        &format!(
            "SELECT P.name, ((p_solvent, p_resin) | C AND {stock})
             FROM Process P WHERE P.constraint[C]"
        ),
    )
    .expect("product-space query");
    println!("producible product combinations per process:\n{res}");

    // 5. "For each order, what is the connection among the required raw
    //    materials?" — fix the order, project onto the material space.
    let res = execute(
        &mut db,
        "SELECT P.name, ((m_acid, m_base) | C AND p_solvent >= 20 AND p_resin >= 10)
         FROM Process P WHERE P.constraint[C]",
    )
    .expect("material-space query");
    println!("raw materials required to fill (>=20 solvent, >=10 resin):\n{res}");
}
