//! An interactive LyriC shell over the paper's office database.
//!
//! ```sh
//! cargo run --example repl
//! ```
//!
//! Then type LyriC at the prompt (statements may span lines; end with `;`):
//!
//! ```text
//! lyric> SELECT Y FROM Desk X WHERE X.drawer.extent[Y];
//! lyric> SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
//!    ...> FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D];
//! ```
//!
//! Meta-commands: `:help`, `:check <query>`, `:bounds <query>`,
//! `:explain [analyze] <query>`, `:profile <query>`, `:trace on|off`,
//! `:trace chrome <file>`, `:threads [n]`, `:schema`, `:classes`,
//! `:extent <Class>`, `:stats`, `:metrics`, `:inflight`,
//! `:flight [dump <file>]`, `:save <file>`, `:load <file>`, `:quit`.
//!
//! Queries run under the engine's *interactive* evaluation budget, so an
//! adversarial constraint blowup reports `evaluation budget exceeded`
//! instead of hanging the shell. `:stats` toggles a per-query engine
//! statistics line (pivots, FM atoms, disjuncts, cache hits).
//!
//! `:explain <query>` prints the static operator plan (extent sizes,
//! constraint atom/disjunct counts, the algebra rewrite rules that
//! apply); `:explain analyze <query>` runs the query and annotates each
//! operator with rows in/out, exclusive/inclusive time and its engine
//! counter share — the same report `lyric-serve` returns for
//! `{"explain": true}` query bodies.
//!
//! `:profile <query>` runs one query with tracing and prints its span
//! tree: per-phase wall-clock with hot-path percentages, source byte
//! ranges, and engine counter deltas. `:trace on` does the same for every
//! subsequent statement; `:trace chrome <file>` additionally writes each
//! traced query's Chrome trace-event JSON (load it in `chrome://tracing`
//! or Perfetto — parallel queries show one track per worker thread).
//!
//! `:bounds <query>` runs a query and prints, for every constraint-valued
//! result cell, the interval bounding box computed by the abstract
//! interpreter (`x in [0, 20], y in (-inf, 7]` — the same sound
//! over-approximation the engine uses to skip LP satisfiability calls).
//!
//! `:threads <n>` sets the evaluation thread budget (`:threads` shows
//! it). The shell starts from `LYRIC_THREADS` or the machine's available
//! parallelism; answers are identical at every setting.
//!
//! `:metrics` renders the process-lifetime metric registry as a table:
//! cumulative engine counters, query-latency quantiles (p50/p90/p99),
//! budget events, and pool activity — the same data `lyric-serve`
//! exposes at `/metrics` in Prometheus format.
//!
//! `:inflight` lists the queries registered as executing right now (the
//! shell itself runs queries synchronously, so from the prompt this
//! shows other threads of the process — it mirrors `lyric-serve`'s
//! `GET /debug/inflight`). `:flight` summarizes the process-lifetime
//! flight recorder: the recent completed-query ring with outcomes,
//! durations and engine counters. `:flight dump <file>` writes the full
//! recorder state (rings, registry, build identity) as one JSON
//! document — the same black box the engine drops into
//! `LYRIC_FLIGHT_DIR` on a budget abort, panic, or `LYRIC_SLOW_MS`
//! breach.

use lyric::{
    default_threads, execute_traced_with_options, execute_with_options, paper_example,
    EngineBudget, ExecOptions,
};
use std::io::{self, BufRead, Write};

/// Shell state beyond the database itself.
struct Session {
    show_stats: bool,
    /// Print a span tree after every statement.
    trace: bool,
    /// Also export each traced query's Chrome trace JSON here.
    chrome_path: Option<String>,
    /// Thread budget for parallel evaluation (`:threads`).
    threads: usize,
}

impl Session {
    fn exec_options(&self) -> ExecOptions {
        ExecOptions::default()
            .with_budget(EngineBudget::interactive())
            .with_threads(self.threads)
    }
}

fn main() {
    let mut db = paper_example::database();
    let mut session = Session {
        show_stats: false,
        trace: false,
        chrome_path: None,
        threads: default_threads(),
    };
    // Long-lived surface: publish the build-identity gauge and default
    // the flight recorder's event tee on (explicit env still wins).
    lyric::metrics::build::register_build_info();
    lyric::flight::recorder::enable_events_default();
    println!("LyriC shell — the Figure 2 office database is loaded.");
    println!("End statements with ';'. Type :help for commands.\n");

    let stdin = io::stdin();
    let mut buffer = String::new();
    prompt(buffer.is_empty());
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with(':') {
            if !meta_command(&mut db, &mut session, trimmed) {
                break;
            }
            prompt(true);
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if trimmed.ends_with(';') {
            let stmt = buffer.trim().trim_end_matches(';').to_string();
            buffer.clear();
            if !stmt.is_empty() {
                run_statement(&mut db, &session, &stmt);
            }
        }
        prompt(buffer.is_empty());
    }
    println!();
}

/// Execute one statement, tracing it when the session asks for it.
fn run_statement(db: &mut lyric::oodb::Database, session: &Session, stmt: &str) {
    let traced = session.trace || session.chrome_path.is_some();
    let (result, trace) = if traced {
        match execute_traced_with_options(db, stmt, &session.exec_options()) {
            Ok((r, t)) => (r, Some(t)),
            Err(e) => {
                println!("error: {e}");
                return;
            }
        }
    } else {
        match execute_with_options(db, stmt, &session.exec_options()) {
            Ok(r) => (r, None),
            Err(e) => {
                println!("error: {e}");
                return;
            }
        }
    };
    if result.rows.is_empty() {
        println!("(no rows)");
    } else {
        print!("{result}");
        println!("({} row{})", result.rows.len(), plural(result.rows.len()));
    }
    if let Some(trace) = &trace {
        if session.trace {
            print!("{}", lyric::trace::render_tree(trace));
        }
        export_chrome(session, trace);
    }
    if session.show_stats {
        println!("[engine: {}]", result.stats);
    }
}

/// Write the trace's Chrome JSON to the session's export path, if set.
fn export_chrome(session: &Session, trace: &lyric::trace::Trace) {
    if let Some(path) = &session.chrome_path {
        match std::fs::write(path, lyric::trace::to_chrome_trace(trace)) {
            Ok(()) => println!("[trace written to {path}]"),
            Err(e) => println!("[trace write to {path} failed: {e}]"),
        }
    }
}

fn prompt(fresh: bool) {
    print!("{}", if fresh { "lyric> " } else { "   ...> " });
    let _ = io::stdout().flush();
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Returns false when the shell should exit.
fn meta_command(db: &mut lyric::oodb::Database, session: &mut Session, cmd: &str) -> bool {
    let mut parts = cmd.split_whitespace();
    match parts.next() {
        Some(":quit") | Some(":q") | Some(":exit") => return false,
        Some(":help") | Some(":h") => {
            println!(":help             this help");
            println!(":check <query>    analyze a query without running it (strict + deep)");
            println!(":bounds <query>   run a query and print each CST cell's bounding box");
            println!(":explain <query>  print the operator plan without running the query");
            println!(":explain analyze <query>  run it and annotate the plan with rows/time");
            println!(":profile <query>  run a query with tracing and print its span tree");
            println!(":trace on|off     trace every statement (span tree after the rows)");
            println!(":trace chrome <file>  also export Chrome trace JSON per traced query");
            println!(":threads [n]      show or set the evaluation thread budget");
            println!(":schema           list classes with their attributes");
            println!(":classes          list class names");
            println!(":extent <Class>   list the instances of a class");
            println!(":stats            toggle the per-query engine statistics line");
            println!(":metrics          process-lifetime metrics (counters, latency quantiles)");
            println!(":inflight         queries executing right now, with live progress");
            println!(":flight           recent completed queries from the flight recorder");
            println!(":flight dump <file>  write the full recorder state as JSON");
            println!(":save <file>      dump the database as text");
            println!(":load <file>      replace the database from a dump");
            println!(":quit             leave");
            println!("anything else     a LyriC statement, terminated by ';'");
        }
        Some(":check") => {
            let src = cmd[":check".len()..].trim().trim_end_matches(';').trim();
            if src.is_empty() {
                println!("usage: :check <query>  (single line, ';' optional)");
            } else {
                let diags = lyric_analyze::analyze_src(
                    db.schema(),
                    src,
                    &lyric_analyze::AnalyzerOptions::deep(),
                );
                if diags.is_empty() {
                    println!("ok: no diagnostics");
                } else {
                    print!("{}", lyric_analyze::render_all(&diags, src));
                }
            }
        }
        Some(":bounds") => {
            let src = cmd[":bounds".len()..].trim().trim_end_matches(';').trim();
            if src.is_empty() {
                println!("usage: :bounds <query>  (single line, ';' optional)");
            } else {
                match execute_with_options(db, src, &session.exec_options()) {
                    Ok(result) => {
                        let mut printed = false;
                        for (i, row) in result.rows.iter().enumerate() {
                            for (cell, col) in row.iter().zip(&result.columns) {
                                if let Some(cst) = cell.as_cst() {
                                    println!("row {i} {col}: {}", cst.interval_box());
                                    printed = true;
                                }
                            }
                        }
                        if !printed {
                            println!("(no constraint columns)");
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
        }
        Some(":explain") => {
            let rest = cmd[":explain".len()..].trim();
            let (analyze, src) = match rest.strip_prefix("analyze") {
                // `analyze` must be the whole word, not a query starting
                // with it — require whitespace after.
                Some(after) if after.starts_with(char::is_whitespace) => (true, after),
                _ => (false, rest),
            };
            let src = src.trim().trim_end_matches(';').trim();
            if src.is_empty() {
                println!("usage: :explain [analyze] <query>  (single line, ';' optional)");
            } else if analyze {
                match lyric::execute_explained_with_options(db, src, &session.exec_options()) {
                    Ok((result, report)) => {
                        println!("({} row{})", result.rows.len(), plural(result.rows.len()));
                        print!("{}", report.render());
                    }
                    Err(e) => println!("error: {e}"),
                }
            } else {
                match lyric::explain(db, src) {
                    Ok(report) => print!("{}", report.render()),
                    Err(e) => println!("error: {e}"),
                }
            }
        }
        Some(":profile") => {
            let src = cmd[":profile".len()..].trim().trim_end_matches(';').trim();
            if src.is_empty() {
                println!("usage: :profile <query>  (single line, ';' optional)");
            } else {
                match execute_traced_with_options(db, src, &session.exec_options()) {
                    Ok((result, trace)) => {
                        println!("({} row{})", result.rows.len(), plural(result.rows.len()));
                        print!("{}", lyric::trace::render_tree(&trace));
                        println!("[engine: {}]", result.stats);
                        export_chrome(session, &trace);
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
        }
        Some(":trace") => match parts.next() {
            Some("on") => {
                session.trace = true;
                println!("tracing on");
            }
            Some("off") => {
                session.trace = false;
                session.chrome_path = None;
                println!("tracing off");
            }
            Some("chrome") => match parts.next() {
                Some(path) => {
                    session.chrome_path = Some(path.to_string());
                    println!("chrome trace export to {path}");
                }
                None => println!("usage: :trace chrome <file>"),
            },
            _ => println!("usage: :trace on|off  or  :trace chrome <file>"),
        },
        Some(":threads") => match parts.next() {
            None => println!("threads: {}", session.threads),
            Some(n) => match n.parse::<usize>() {
                Ok(n) if n >= 1 => {
                    session.threads = n;
                    println!("threads set to {n}");
                }
                _ => println!("usage: :threads <positive integer>"),
            },
        },
        Some(":metrics") => {
            let snapshot = lyric::metrics::global().snapshot();
            if snapshot.families.is_empty() {
                println!("no metrics recorded yet (run a query first)");
            } else {
                print!("{}", lyric::metrics::render_table(&snapshot));
            }
        }
        Some(":inflight") => {
            let snapshots = lyric::flight::inflight::snapshot();
            if snapshots.is_empty() {
                println!("(no queries in flight)");
            } else {
                for s in &snapshots {
                    let pct = s
                        .budget_pct
                        .map_or(String::new(), |p| format!(" {p}% of budget"));
                    println!(
                        "#{} [{:.1}s{pct}, {} thread{}] {}",
                        s.id,
                        s.elapsed_us as f64 / 1e6,
                        s.threads,
                        plural(s.threads),
                        s.query
                    );
                    let [pivots, fm_atoms, disjuncts, sat_checks, box_prunes, index_probes] =
                        s.counters;
                    println!(
                        "    pivots {pivots}, FM atoms {fm_atoms}, disjuncts {disjuncts}, \
                         sat checks {sat_checks}, box prunes {box_prunes}, index probes {index_probes}"
                    );
                }
            }
        }
        Some(":flight") => match parts.next() {
            None => {
                let queries = lyric::flight::recorder::recent_queries();
                println!(
                    "flight recorder: {} (events {}), {} quer{} held",
                    if lyric::flight::recorder::enabled() {
                        "on"
                    } else {
                        "off"
                    },
                    if lyric::flight::recorder::events_enabled() {
                        "on"
                    } else {
                        "off"
                    },
                    queries.len(),
                    if queries.len() == 1 { "y" } else { "ies" },
                );
                // Newest last, like a log; cap the scrollback.
                const SHOW: usize = 16;
                if queries.len() > SHOW {
                    println!(
                        "  … {} older entries (':flight dump <file>' for all)",
                        queries.len() - SHOW
                    );
                }
                for q in queries.iter().rev().take(SHOW).rev() {
                    let outcome = if q.resource.is_empty() {
                        q.outcome.to_string()
                    } else {
                        format!("{} ({})", q.outcome, q.resource)
                    };
                    println!(
                        "  {:>9.1}ms {outcome:<16} {} row{} trace {}  {}",
                        q.duration_us as f64 / 1e3,
                        q.rows,
                        plural(q.rows as usize),
                        q.trace_id,
                        q.query
                    );
                }
            }
            Some("dump") => match parts.next() {
                Some(path) => {
                    let doc = lyric::flight::dump::build_doc(lyric::flight::Trigger::Manual, None);
                    let mut text = doc.to_string();
                    text.push('\n');
                    match std::fs::write(path, text) {
                        Ok(()) => println!("flight recorder dumped to {path}"),
                        Err(e) => println!("dump write to {path} failed: {e}"),
                    }
                }
                None => println!("usage: :flight dump <file>"),
            },
            Some(other) => {
                println!("unknown :flight subcommand {other} (try :flight or :flight dump <file>)")
            }
        },
        Some(":stats") => {
            session.show_stats = !session.show_stats;
            println!(
                "engine statistics {}",
                if session.show_stats { "on" } else { "off" }
            );
        }
        Some(":classes") => {
            for name in db.schema().class_names() {
                println!("{name}");
            }
        }
        Some(":schema") => {
            for name in db.schema().class_names() {
                let def = db.schema().class(name).expect("listed class exists");
                print!("{name}");
                if !def.interface.is_empty() {
                    let vars: Vec<&str> = def.interface.iter().map(|v| v.name()).collect();
                    print!("({})", vars.join(","));
                }
                if !def.parents.is_empty() {
                    print!(" : {}", def.parents.join(", "));
                }
                println!();
                for (attr, decl) in db.schema().attributes_of(name) {
                    let star = if decl.is_set { "*" } else { "" };
                    match &decl.target {
                        lyric::oodb::AttrTarget::Cst { vars } => {
                            let vs: Vec<&str> = vars.iter().map(|v| v.name()).collect();
                            println!("  {attr}{star} : CST({})", vs.join(","));
                        }
                        lyric::oodb::AttrTarget::Class { class, actuals } => match actuals {
                            Some(a) => {
                                let vs: Vec<&str> = a.iter().map(|v| v.name()).collect();
                                println!("  {attr}{star} : ({}) -> {class}", vs.join(","));
                            }
                            None => println!("  {attr}{star} : {class}"),
                        },
                    }
                }
            }
        }
        Some(":save") => match parts.next() {
            Some(path) => match lyric::storage::save(db) {
                Ok(text) => match std::fs::write(path, text) {
                    Ok(()) => println!("saved to {path}"),
                    Err(e) => println!("write failed: {e}"),
                },
                Err(e) => println!("serialize failed: {e}"),
            },
            None => println!("usage: :save <file>"),
        },
        Some(":load") => match parts.next() {
            Some(path) => match std::fs::read_to_string(path) {
                Ok(text) => match lyric::storage::load(&text) {
                    Ok(loaded) => {
                        *db = loaded;
                        println!("loaded {path}");
                    }
                    Err(e) => println!("parse failed: {e}"),
                },
                Err(e) => println!("read failed: {e}"),
            },
            None => println!("usage: :load <file>"),
        },
        Some(":extent") => match parts.next() {
            Some(class) if db.schema().has_class(class) => {
                for oid in db.extent(class) {
                    println!("{oid}");
                }
            }
            Some(class) => println!("unknown class {class}"),
            None => println!("usage: :extent <Class>"),
        },
        Some(other) => println!("unknown command {other} (try :help)"),
        None => {}
    }
    true
}
