//! Spatial / GIS workload: constraint objects as named map regions, the
//! paper's third application realm, including the §4.1 classification
//! view (one view class per Region, with the view name given by a query
//! variable).
//!
//! ```sh
//! cargo run --example gis_regions
//! ```

use lyric::execute;
use lyric_arith::Rational;
use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
use lyric_oodb::{AttrDef, AttrTarget, ClassDef, Database, Oid, Schema, Value};

fn v(n: &str) -> LinExpr {
    LinExpr::var(Var::new(n))
}

fn c(n: i64) -> LinExpr {
    LinExpr::from(n)
}

/// A convex polygonal region over map coordinates (u, v).
fn region(atoms: impl IntoIterator<Item = Atom>) -> CstObject {
    CstObject::new(vec![Var::new("u"), Var::new("v")], [Conjunction::of(atoms)])
}

fn main() {
    let mut schema = Schema::new();
    // Region is a subclass of CST(2) — §3.2's CST classes — and carries a
    // name attribute, as the paper suggests ("names of regions in a GIS").
    schema
        .add_class(
            ClassDef::new("Region")
                .cst_class(2)
                .attr(AttrDef::scalar("name", AttrTarget::class("string"))),
        )
        .expect("schema");
    schema
        .add_class(
            ClassDef::new("Site")
                .attr(AttrDef::scalar("name", AttrTarget::class("string")))
                .attr(AttrDef::scalar("footprint", AttrTarget::cst(["u", "v"]))),
        )
        .expect("schema");
    let mut db = Database::new(schema).expect("validates");

    // A 100×100 map: a triangular park, a rectangular harbor, and the
    // city core.
    let park = region([
        Atom::ge(v("u"), c(10)),
        Atom::ge(v("v"), c(10)),
        Atom::le(v("u") + v("v"), c(60)),
    ]);
    let harbor = region([
        Atom::ge(v("u"), c(70)),
        Atom::le(v("u"), c(100)),
        Atom::ge(v("v"), c(0)),
        Atom::le(v("v"), c(30)),
    ]);
    let core = region([
        Atom::ge(v("u"), c(30)),
        Atom::le(v("u"), c(70)),
        Atom::ge(v("v"), c(40)),
        Atom::le(v("v"), c(80)),
    ]);
    for (name, r) in [("park", &park), ("harbor", &harbor), ("core", &core)] {
        db.insert(
            Oid::cst(r.clone()),
            "Region",
            [("name", Value::Scalar(Oid::str(name)))],
        )
        .expect("region insert");
    }

    // Sites with polygonal footprints.
    let site = |u0: i64, u1: i64, v0: i64, v1: i64| {
        region([
            Atom::ge(v("u"), c(u0)),
            Atom::le(v("u"), c(u1)),
            Atom::ge(v("v"), c(v0)),
            Atom::le(v("v"), c(v1)),
        ])
    };
    for (name, fp) in [
        ("bandstand", site(15, 20, 15, 20)),
        ("pier_7", site(80, 90, 5, 15)),
        ("warehouse", site(72, 95, 2, 28)),
        ("city_hall", site(45, 55, 55, 65)),
        ("border_market", site(65, 75, 25, 45)), // straddles regions
    ] {
        db.insert(
            Oid::named(name),
            "Site",
            [
                ("name", Value::Scalar(Oid::str(name))),
                ("footprint", Value::Scalar(Oid::cst(fp))),
            ],
        )
        .expect("site insert");
    }

    println!("== GIS regions over a 100x100 map ==\n");

    // 1. Containment (the paper: "containment is expressed by
    //    implication"): which sites lie entirely within which region?
    let res = execute(
        &mut db,
        "SELECT S.name, R.name
         FROM Site S, Region R
         WHERE S.footprint[F] AND (F(u,v) |= R(u,v))",
    )
    .expect("containment query");
    println!("site ⊆ region (entailment):\n{res}");

    // 2. Intersection ("intersection is expressed by conjunction"): which
    //    sites merely touch a region?
    let res = execute(
        &mut db,
        "SELECT S.name, R.name
         FROM Site S, Region R
         WHERE S.footprint[F] AND (F(u,v) AND R(u,v))",
    )
    .expect("intersection query");
    println!("site ∩ region nonempty (satisfiability):\n{res}");

    // 3. The §4.1 classification view: one subclass of Site per region
    //    containing the site. The view name is the query variable R.
    let res = execute(
        &mut db,
        "CREATE VIEW R AS SUBCLASS OF Site
         SELECT S
         FROM Site S, Region R
         WHERE S.footprint[F] AND (F(u,v) |= R(u,v))",
    )
    .expect("classification view");
    println!(
        "classification view created ({} memberships):\n{res}",
        res.rows.len()
    );

    // The park's view class now contains exactly the bandstand.
    let park_class = Oid::cst(park.clone()).to_string();
    println!(
        "instances of the park's view class: {:?}",
        db.extent(&park_class)
            .iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>()
    );

    // 4. Overlay analysis without stored objects: the part of the harbor
    //    not covered by any site footprint, as a new constraint object.
    let res = execute(
        &mut db,
        "SELECT R, ((u,v) | R(u,v) AND u <= 75) FROM Region R WHERE R.name = 'harbor'",
    )
    .expect("overlay query");
    let strip = res.rows[0][1].as_cst().expect("cst");
    println!("\nwestern strip of the harbor: {strip}");
    println!(
        "  area nonempty: {}, contains (72, 10): {}",
        strip.satisfiable(),
        strip.contains_point(&[Rational::from_int(72), Rational::from_int(10)])
    );

    // 5. Back to explicit geometry: exact polygon vertices of each region
    //    (what a map renderer downstream of LyriC needs).
    println!("\nregion polygons (exact, counter-clockwise):");
    for (name, r) in [("park", &park), ("harbor", &harbor), ("core", &core)] {
        let polygons = r.vertices_2d().expect("regions are bounded 2-D");
        for poly in polygons {
            let pts: Vec<String> = poly.iter().map(|(x, y)| format!("({x},{y})")).collect();
            println!("  {name}: {}", pts.join(" "));
        }
    }
}
