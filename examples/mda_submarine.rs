//! The submarine Maneuver Decision Aid of §1.2 (BVCS93).
//!
//! The real MDA is a proprietary Naval Undersea Warfare Center system; per
//! the reproduction's substitution rule we build a synthetic equivalent
//! that exercises the same query shapes: maneuvers are points in the
//! 4-dimensional space (course, speed, depth, time); goals such as "avoid
//! the land obstacle", "maintain depth at 200 ft", "minimize speed" are
//! constraint objects; queries find the best suitable maneuver regions
//! under interrelated and possibly contradicting goals.
//!
//! ```sh
//! cargo run --example mda_submarine
//! ```

use lyric::execute;
use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
use lyric_oodb::{AttrDef, AttrTarget, ClassDef, Database, Oid, Schema, Value};

const DIMS: [&str; 4] = ["course", "speed", "depth", "time"];

fn dims() -> Vec<Var> {
    DIMS.iter().map(Var::new).collect()
}

fn v(n: &str) -> LinExpr {
    LinExpr::var(Var::new(n))
}

fn c(n: i64) -> LinExpr {
    LinExpr::from(n)
}

fn goal(atoms: impl IntoIterator<Item = Atom>) -> CstObject {
    CstObject::new(dims(), [Conjunction::of(atoms)])
}

fn main() {
    let mut schema = Schema::new();
    schema
        .add_class(
            ClassDef::new("Goal")
                .attr(AttrDef::scalar("name", AttrTarget::class("string")))
                .attr(AttrDef::scalar("priority", AttrTarget::class("int")))
                .attr(AttrDef::scalar("region", AttrTarget::cst(DIMS))),
        )
        .expect("schema");
    let mut db = Database::new(schema).expect("validates");

    // Battle-management goals over (course °, speed kn, depth ft, time min).
    let goals: Vec<(&str, i64, CstObject)> = vec![
        (
            "operational envelope",
            1,
            goal([
                Atom::ge(v("course"), c(0)),
                Atom::le(v("course"), c(360)),
                Atom::ge(v("speed"), c(2)),
                Atom::le(v("speed"), c(30)),
                Atom::ge(v("depth"), c(50)),
                Atom::le(v("depth"), c(800)),
                Atom::ge(v("time"), c(0)),
                Atom::le(v("time"), c(120)),
            ]),
        ),
        (
            "maintain depth near 200ft",
            2,
            goal([Atom::ge(v("depth"), c(150)), Atom::le(v("depth"), c(250))]),
        ),
        (
            "avoid land obstacle to the east",
            1,
            // Heading must stay west of the shoal during the first hour:
            // course between 180 and 300 while time <= 60.
            goal([
                Atom::ge(v("course"), c(180)),
                Atom::le(v("course"), c(300)),
                Atom::le(v("time"), c(60)),
            ]),
        ),
        (
            "quiet running",
            3,
            // Speed bounded by a depth-dependent noise budget:
            // speed <= 5 + depth/50.
            goal([Atom::le(
                v("speed"),
                c(5) + v("depth").scale(&lyric_arith::Rational::from_pair(1, 50)),
            )]),
        ),
    ];
    for (name, priority, region) in goals {
        db.insert(
            Oid::named(name.replace(' ', "_")),
            "Goal",
            [
                ("name", Value::Scalar(Oid::str(name))),
                ("priority", Value::Scalar(Oid::Int(priority))),
                ("region", Value::Scalar(Oid::cst(region))),
            ],
        )
        .expect("goal insert");
    }

    println!("== Maneuver Decision Aid (4-D: course, speed, depth, time) ==\n");

    // 1. Pairwise compatibility of goals: which pairs admit a common
    //    maneuver?
    let res = execute(
        &mut db,
        "SELECT A.name, B.name
         FROM Goal A, Goal B
         WHERE A.region[RA] AND B.region[RB] AND A != B
           AND (RA(course,speed,depth,time) AND RB(course,speed,depth,time))",
    )
    .expect("compatibility query");
    println!(
        "compatible goal pairs: {} of 12 ordered pairs\n",
        res.rows.len()
    );

    // 2. The joint maneuver region of all priority-1 and priority-2 goals,
    //    as a new constraint object.
    let res = execute(
        &mut db,
        "SELECT ((course,speed,depth,time) |
                   A.region(course,speed,depth,time)
               AND B.region(course,speed,depth,time)
               AND C.region(course,speed,depth,time))
         FROM Goal A, Goal B, Goal C
         WHERE A.name = 'operational envelope'
           AND B.name = 'maintain depth near 200ft'
           AND C.name = 'avoid land obstacle to the east'",
    )
    .expect("joint region query");
    let joint = res.rows[0][0].as_cst().expect("cst answer");
    println!("joint maneuver region (priorities 1-2):\n  {joint}\n");

    // 3. "Minimize speed" against the joint region (a goal expressed as an
    //    objective, the paper's phrasing).
    let res = execute(
        &mut db,
        "SELECT MIN(speed SUBJECT TO ((course,speed,depth,time) |
                   A.region(course,speed,depth,time)
               AND B.region(course,speed,depth,time)
               AND D.region(course,speed,depth,time))),
                MIN_POINT(speed SUBJECT TO ((course,speed,depth,time) |
                   A.region(course,speed,depth,time)
               AND B.region(course,speed,depth,time)
               AND D.region(course,speed,depth,time)))
         FROM Goal A, Goal B, Goal D
         WHERE A.name = 'operational envelope'
           AND B.name = 'maintain depth near 200ft'
           AND D.name = 'quiet running'",
    )
    .expect("min speed query");
    println!("slowest compliant maneuver:\n{res}");

    // 4. Entailment: does the quiet-running budget already guarantee the
    //    envelope's speed cap (speed <= 30) within the envelope's depths?
    let res = execute(
        &mut db,
        "SELECT Q.name
         FROM Goal Q, Goal E
         WHERE Q.name = 'quiet running' AND E.name = 'operational envelope'
           AND Q.region[RQ] AND E.region[RE]
           AND ((RQ(course,speed,depth,time) AND depth <= 800) |= speed <= 30)",
    )
    .expect("entailment query");
    println!(
        "quiet running implies the 30kn cap below 800ft: {}",
        if res.rows.is_empty() { "no" } else { "yes" }
    );

    // 5. A contradicting goal: sprint at 25+ kn while staying quiet at
    //    shallow depth — the satisfiability predicate rejects it.
    let res = execute(
        &mut db,
        "SELECT Q.name FROM Goal Q
         WHERE Q.name = 'quiet running' AND Q.region[RQ]
           AND (RQ(course,speed,depth,time) AND speed >= 25 AND depth <= 100)",
    )
    .expect("contradiction query");
    println!(
        "sprint-while-quiet-and-shallow is feasible: {}",
        if res.rows.is_empty() {
            "no (goals contradict, as expected)"
        } else {
            "yes"
        }
    );
}
