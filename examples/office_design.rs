//! Office design (§1.2): the designer questions the paper's introduction
//! motivates, answered on a populated room.
//!
//! * which placed objects overlap?
//! * where can an additional desk go so that nothing touches?
//! * what placement maximizes clearance from the walls?
//! * show a cut of the room contents at a given height.
//!
//! ```sh
//! cargo run --example office_design
//! ```

use lyric::paper_example::{box2, point2, translation2};
use lyric::{execute, parse_query};
use lyric_arith::Rational;
use lyric_constraint::{Atom, Conjunction, CstObject, Extremum, LinExpr, Var};
use lyric_oodb::{Database, Oid, Value};

const ROOM_W: i64 = 20;
const ROOM_H: i64 = 10;

fn place(db: &mut Database, i: usize, class: &str, w: i64, h: i64, x: i64, y: i64) {
    let drawer = format!("ex_drawer_{i}");
    db.insert(
        Oid::named(&drawer),
        "Drawer",
        [
            (
                "extent",
                Value::Scalar(Oid::cst(box2("w", "z", -1, 1, -1, 1))),
            ),
            ("translation", Value::Scalar(Oid::cst(translation2()))),
        ],
    )
    .expect("drawer insert");
    let catalog = format!("ex_catalog_{i}");
    let (cv0, cv1) = if class == "Desk" {
        ("p", "q")
    } else {
        ("p1", "q1")
    };
    let center = CstObject::point(
        vec![Var::new(cv0), Var::new(cv1)],
        &[Rational::from_int(-w), Rational::zero()],
    );
    let center_value = if class == "Desk" {
        Value::Scalar(Oid::cst(center))
    } else {
        Value::set([Oid::cst(center)])
    };
    db.insert(
        Oid::named(&catalog),
        class,
        [
            ("name", Value::Scalar(Oid::str(format!("{class} #{i}")))),
            ("color", Value::Scalar(Oid::str("red"))),
            (
                "extent",
                Value::Scalar(Oid::cst(box2("w", "z", -w, w, -h, h))),
            ),
            ("translation", Value::Scalar(Oid::cst(translation2()))),
            ("drawer_center", center_value),
            ("drawer", Value::Scalar(Oid::named(&drawer))),
        ],
    )
    .expect("catalog insert");
    db.insert(
        Oid::named(format!("ex_obj_{i}")),
        "Object_In_Room",
        [
            ("inv_number", Value::Scalar(Oid::str(format!("ex-{i}")))),
            ("location", Value::Scalar(Oid::cst(point2("x", "y", x, y)))),
            ("catalog_object", Value::Scalar(Oid::named(&catalog))),
        ],
    )
    .expect("room insert");
}

fn main() {
    let mut db = Database::new(lyric::paper_example::schema()).expect("schema validates");
    db.declare_instance("Color", Oid::str("red"))
        .expect("color");

    // Two desks and a file cabinet in a 20×10 room.
    place(&mut db, 0, "Desk", 4, 2, 5, 3);
    place(&mut db, 1, "Desk", 4, 2, 14, 7);
    place(&mut db, 2, "File_Cabinet", 1, 2, 18, 2);

    println!("== Office design in a {ROOM_W}x{ROOM_H} room ==\n");

    // 1. Overlapping pairs, as a view (the §2.2 Overlap example).
    let res = execute(
        &mut db,
        "CREATE VIEW Overlap AS SUBCLASS OF object
         SELECT first = X, second = Y
         SIGNATURE first => Object_In_Room, second => Object_In_Room
         FROM Object_In_Room X, Object_In_Room Y
         OID FUNCTION OF X, Y
         WHERE X.catalog_object[CX] AND Y.catalog_object[CY]
           AND X.location[LX] AND Y.location[LY]
           AND CX.extent[EX] AND CX.translation[DX]
           AND CY.extent[EY] AND CY.translation[DY]
           AND X != Y
           AND (EX(w,z) AND DX(w,z,x,y,u,v) AND LX(x,y)
                AND EY(w2,z2) AND DY(w2,z2,x2,y2,u,v) AND LY(x2,y2))",
    )
    .expect("overlap view");
    println!(
        "overlapping pairs: {} (expected 0 — the layout is clean)\n",
        res.rows.len()
    );

    // 2. Where can an additional 2×2 desk center go? Build the free-space
    //    region programmatically: room shrunk by the new desk's half-size,
    //    minus the Minkowski-inflated footprints of the placed objects.
    let cx = Var::new("cx");
    let cy = Var::new("cy");
    let mut feasible = CstObject::from_conjunction(
        vec![cx.clone(), cy.clone()],
        Conjunction::of([
            Atom::ge(LinExpr::var(cx.clone()), LinExpr::from(1)),
            Atom::le(LinExpr::var(cx.clone()), LinExpr::from(ROOM_W - 1)),
            Atom::ge(LinExpr::var(cy.clone()), LinExpr::from(1)),
            Atom::le(LinExpr::var(cy.clone()), LinExpr::from(ROOM_H - 1)),
        ]),
    );
    // Fetch each placed object's global extent through a LyriC query.
    let parsed = parse_query(
        "SELECT O, ((u,v) | E AND D AND L(x,y))
         FROM Object_In_Room O
         WHERE O.catalog_object[C] AND C.extent[E] AND C.translation[D] AND O.location[L]",
    )
    .expect("parses");
    let res = lyric::execute_parsed(&mut db, &parsed).expect("extents query");
    for row in &res.rows {
        let footprint = row[1].as_cst().expect("cst column");
        // Forbid centers within 1 (the new desk's half-size) of the
        // footprint: inflate by 1 via a bounding-box over-approximation.
        let bb = footprint.bounding_box().expect("nonempty footprint");
        let (lo_u, hi_u) = (bb[0].0.clone().unwrap(), bb[0].1.clone().unwrap());
        let (lo_v, hi_v) = (bb[1].0.clone().unwrap(), bb[1].1.clone().unwrap());
        let one = Rational::one();
        let blocked = CstObject::from_conjunction(
            vec![cx.clone(), cy.clone()],
            Conjunction::of([
                Atom::ge(LinExpr::var(cx.clone()), LinExpr::constant(&lo_u - &one)),
                Atom::le(LinExpr::var(cx.clone()), LinExpr::constant(&hi_u + &one)),
                Atom::ge(LinExpr::var(cy.clone()), LinExpr::constant(&lo_v - &one)),
                Atom::le(LinExpr::var(cy.clone()), LinExpr::constant(&hi_v + &one)),
            ]),
        );
        // feasible := feasible ∧ ¬blocked  (negation of a conjunctive
        // constraint is a disjunction — §3.1).
        let complement = blocked.negate().expect("conjunctive");
        feasible = feasible.and(&complement).canonicalize();
    }
    println!(
        "free-space region for a new 2x2 desk center: {} disjuncts, nonempty: {}",
        feasible.disjuncts().len(),
        feasible.satisfiable()
    );
    if let Some(p) = feasible.find_point() {
        println!("  a valid center: ({}, {})", p[0], p[1]);
    }

    // 3. Among valid centers, maximize the clearance from the left wall.
    match feasible.maximize(&LinExpr::var(cx.clone())) {
        Extremum::Finite { bound, witness, .. } => println!(
            "  rightmost valid center: cx = {bound} (at cy = {})",
            witness.get(&cy).cloned().unwrap_or_default()
        ),
        other => println!("  unexpected optimization outcome: {other:?}"),
    }

    // 4. The §1.2 "cut" query: slice every placed footprint at height
    //    v = 3 (the paper slices at 1/2 foot in local coordinates).
    println!("\ncuts at v = 3 (room coordinates):");
    for row in &res.rows {
        let footprint = row[1].as_cst().expect("cst column");
        let cut = footprint.slice(&Var::new("v"), &Rational::from_int(3));
        println!(
            "  {}: {}",
            row[0],
            if cut.satisfiable() {
                cut.to_string()
            } else {
                "empty".into()
            }
        );
    }
}
