//! Slow-query forensics end to end: with `LYRIC_SLOW_EXPLAIN=1` (here
//! via the programmatic override) and a slow threshold configured, a
//! *plain* `execute_shared` call reroutes through the explained runner
//! and its query-log line carries an `explain` member — the top (≤3)
//! plan nodes by exclusive time, each with node id, operator, self
//! micros and output rows, sorted descending. No caller opted into
//! explain; the log gains the forensics on its own.
//!
//! This lives in its own test binary: the gate is process-global, and
//! while armed it reroutes every logged SELECT in the process.

use lyric::metrics::querylog;
use lyric::{execute_shared, paper_example, ExecOptions};

const Q: &str = "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
     FROM Desk DSK
     WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)";

/// The store index stays off here: on this one-desk database the
/// first-query index build would otherwise dominate the `from_bind`
/// span's self time and displace the entailment check the summary
/// assertions below pin as the hottest operator.
fn opts() -> ExecOptions {
    ExecOptions::default().with_index(false)
}

#[test]
fn slow_log_lines_carry_a_top_nodes_summary() {
    let db = paper_example::database();
    lyric::metrics::set_enabled(true);
    let buf = querylog::capture();
    querylog::set_slow_ms(Some(0)); // every query is "slow"
    querylog::set_slow_explain(true);

    let res = execute_shared(&db, Q, &opts());

    querylog::set_slow_explain(false);
    querylog::set_slow_ms(None);
    querylog::set_sink(None);
    let res = res.expect("query evaluates");

    let captured = String::from_utf8(buf.lock().unwrap().clone()).expect("log is UTF-8");
    let hash = format!("{:016x}", querylog::query_hash(Q));
    let line = captured
        .lines()
        .find(|l| l.contains(&hash))
        .expect("the query logged exactly while armed");
    let json = lyric::trace::json::parse(line).expect("log line is valid JSON");

    assert_eq!(
        json.get("slow").and_then(|v| match v {
            lyric::trace::Json::Bool(b) => Some(*b),
            _ => None,
        }),
        Some(true),
        "threshold 0 marks the query slow: {line}"
    );
    assert_eq!(
        json.get("rows").and_then(|v| v.as_f64()),
        Some(res.rows.len() as f64),
        "the rerouted run logs the real answer cardinality"
    );

    let summary = json
        .get("explain")
        .and_then(|v| v.as_arr())
        .unwrap_or_else(|| panic!("slow line carries an explain array: {line}"));
    assert!(
        !summary.is_empty() && summary.len() <= 3,
        "top-3 summary has 1..=3 nodes, got {}",
        summary.len()
    );
    let mut last_self = f64::INFINITY;
    for entry in summary {
        for key in ["node", "op", "self_us", "rows_out"] {
            assert!(
                entry.get(key).is_some(),
                "summary entry lacks {key:?}: {line}"
            );
        }
        let self_us = entry.get("self_us").and_then(|v| v.as_f64()).unwrap();
        assert!(
            self_us <= last_self,
            "summary is sorted by self time: {line}"
        );
        last_self = self_us;
    }
    // The hottest node of this query is the entailment check, not the root.
    let top_op = summary[0].get("op").and_then(|v| v.as_str()).unwrap();
    assert!(
        ["entails", "select"].contains(&top_op),
        "top node is a real operator, got {top_op:?}"
    );

    // Disarmed, the same plain call logs without an explain member.
    let buf = querylog::capture();
    querylog::set_slow_ms(Some(0));
    let res = execute_shared(&db, Q, &opts());
    querylog::set_slow_ms(None);
    querylog::set_sink(None);
    res.expect("query evaluates");
    let captured = String::from_utf8(buf.lock().unwrap().clone()).expect("log is UTF-8");
    let line = captured
        .lines()
        .find(|l| l.contains(&hash))
        .expect("the query logged while captured");
    let json = lyric::trace::json::parse(line).expect("log line is valid JSON");
    assert!(
        json.get("explain").is_none(),
        "without the gate the line has no explain member: {line}"
    );
}
