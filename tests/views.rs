//! View semantics: fixed-name views, OID-function views with SIGNATURE,
//! grouped (variable-named) views, and querying views after creation.

use lyric::{execute, paper_example, LyricError};
use lyric_oodb::Oid;

#[test]
fn fixed_name_view_members_are_queryable() {
    let mut db = paper_example::database();
    execute(
        &mut db,
        "CREATE VIEW Red_Things AS SUBCLASS OF Office_Object
         SELECT X FROM Office_Object X WHERE X.color = 'red'",
    )
    .unwrap();
    // The view is a class: FROM works over it, and inherited attributes
    // resolve.
    let res = execute(&mut db, "SELECT X.name FROM Red_Things X").unwrap();
    assert_eq!(res.rows, vec![vec![Oid::str("standard desk")]]);
    // Subclass relationship holds.
    assert!(db.schema().is_subclass("Red_Things", "Office_Object"));
    // Members participate in further views.
    execute(
        &mut db,
        "CREATE VIEW Red_With_Drawer AS SUBCLASS OF Red_Things
         SELECT X FROM Red_Things X WHERE X.drawer[D]",
    )
    .unwrap();
    assert_eq!(db.extent("Red_With_Drawer").len(), 1);
}

#[test]
fn view_is_a_snapshot_not_live() {
    let mut db = paper_example::database();
    execute(
        &mut db,
        "CREATE VIEW Red_Things AS SUBCLASS OF Office_Object
         SELECT X FROM Office_Object X WHERE X.color = 'red'",
    )
    .unwrap();
    assert_eq!(db.extent("Red_Things").len(), 1);
    // Recolor the cabinet red afterwards: the materialized view does not
    // change (documented materialization semantics).
    db.set_attr(
        &Oid::named("standard_cabinet"),
        "color",
        lyric_oodb::Value::Scalar(Oid::str("red")),
    )
    .unwrap();
    assert_eq!(db.extent("Red_Things").len(), 1);
}

#[test]
fn oid_function_view_creates_objects_with_attributes() {
    let mut db = paper_example::database();
    let res = execute(
        &mut db,
        "CREATE VIEW Pairing AS SUBCLASS OF object
         SELECT room = O, item = C
         SIGNATURE room => Object_In_Room, item => Office_Object
         FROM Object_In_Room O
         OID FUNCTION OF O, C
         WHERE O.catalog_object[C]",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 2);
    let members = db.extent("Pairing");
    assert_eq!(members.len(), 2);
    for m in &members {
        // Function-term oids over the generating variables.
        assert!(matches!(m, Oid::Func(name, args) if name == "Pairing" && args.len() == 2));
        // Declared attributes filled in.
        let room = db.attr(m, "room").unwrap().as_scalar().unwrap();
        assert!(db.is_instance(room, "Object_In_Room"));
        let item = db.attr(m, "item").unwrap().as_scalar().unwrap();
        assert!(db.is_instance(item, "Office_Object"));
    }
    // The new objects are queryable through paths.
    let res = execute(&mut db, "SELECT P.room.inv_number FROM Pairing P").unwrap();
    assert_eq!(res.rows.len(), 2);
}

#[test]
fn signature_type_violation_is_caught() {
    let mut db = paper_example::database();
    // `room` is declared as Object_In_Room but bound to a catalog object:
    // insertion into the view class must fail the reference check at
    // validate_references (insert defers object references), or the
    // NotAnInstance check for literals. Here we use a literal mismatch.
    let err = execute(
        &mut db,
        "CREATE VIEW Bad AS SUBCLASS OF object
         SELECT room = O.inv_number
         SIGNATURE room => int
         FROM Object_In_Room O
         OID FUNCTION OF O
         WHERE O.inv_number[N]",
    )
    .unwrap_err();
    assert!(matches!(err, LyricError::Db(_)), "{err}");
}

#[test]
fn grouped_view_one_class_per_binding() {
    let mut db = paper_example::database();
    let west = paper_example::box2("u", "v", 0, 10, 0, 10);
    let east = paper_example::box2("u", "v", 10, 20, 0, 10);
    db.declare_instance("Region", Oid::cst(west.clone()))
        .unwrap();
    db.declare_instance("Region", Oid::cst(east.clone()))
        .unwrap();
    execute(
        &mut db,
        "CREATE VIEW X AS SUBCLASS OF Object_In_Room
         SELECT Y
         FROM Object_In_Room Y, Region X
         WHERE Y.catalog_object[CO] AND Y.location[L] AND CO.extent[E] AND CO.translation[D]
           AND (((u,v) | E AND D AND L(x,y)) |= X(u,v))",
    )
    .unwrap();
    let west_class = Oid::cst(west).to_string();
    let east_class = Oid::cst(east).to_string();
    assert_eq!(db.extent(&west_class), vec![Oid::named("my_desk")]);
    assert_eq!(db.extent(&east_class), vec![Oid::named("my_cabinet")]);
    // Re-running is idempotent (classes already exist).
    execute(
        &mut db,
        "CREATE VIEW X AS SUBCLASS OF Object_In_Room
         SELECT Y
         FROM Object_In_Room Y, Region X
         WHERE Y.catalog_object[CO] AND Y.location[L] AND CO.extent[E] AND CO.translation[D]
           AND (((u,v) | E AND D AND L(x,y)) |= X(u,v))",
    )
    .unwrap();
    assert_eq!(db.extent(&west_class).len(), 1);
}

#[test]
fn duplicate_view_name_rejected() {
    let mut db = paper_example::database();
    execute(
        &mut db,
        "CREATE VIEW V AS SUBCLASS OF object SELECT X FROM Desk X",
    )
    .unwrap();
    let err = execute(
        &mut db,
        "CREATE VIEW V AS SUBCLASS OF object SELECT X FROM Desk X",
    )
    .unwrap_err();
    assert!(
        matches!(err, LyricError::Db(lyric_oodb::DbError::DuplicateClass(_))),
        "{err}"
    );
}
