//! Cache-equivalence properties: memoizing satisfiability/entailment must
//! never change an answer, only skip repeated solves — checked on random
//! conjunctions with the cache on, off, and absent (no engine context).

use lyric::engine::{run_with, EngineBudget};
use lyric_bench::workload;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satisfiability and single-atom entailment answer identically with
    /// the memo cache enabled, disabled, and with no context at all.
    #[test]
    fn cache_never_changes_answers(seed in 0u64..1_000_000) {
        let mut r = workload::rng(seed);
        let c = workload::random_conjunction(&mut r, 4, 8);
        let a = workload::random_atom(&mut r, 4);

        let bare = (c.satisfiable(), c.implies_atom(&a));
        let (cached, _) = run_with(EngineBudget::unlimited(), true, || {
            // Ask twice so the second round actually exercises hits.
            let first = (c.satisfiable(), c.implies_atom(&a));
            let second = (c.satisfiable(), c.implies_atom(&a));
            prop_assert_eq!(first, second);
            first
        })
        .expect("unlimited budget");
        let (uncached, _) = run_with(EngineBudget::unlimited(), false, || {
            (c.satisfiable(), c.implies_atom(&a))
        })
        .expect("unlimited budget");

        prop_assert_eq!(bare, cached);
        prop_assert_eq!(bare, uncached);
    }

    /// DNF simplification (which prunes via cached satisfiability calls)
    /// is also cache-transparent.
    #[test]
    fn simplify_is_cache_transparent(seed in 0u64..1_000_000) {
        let mut r = workload::rng(seed);
        let d = workload::random_dnf(&mut r, 8, 5, 3);
        let bare = d.simplify();
        let (cached, _) =
            run_with(EngineBudget::unlimited(), true, || d.simplify()).expect("unlimited");
        prop_assert_eq!(bare, cached);
    }
}

#[test]
fn repeated_checks_produce_cache_hits() {
    let mut r = workload::rng(11);
    let c = workload::random_satisfiable_conjunction(&mut r, 3, 8);
    let a = workload::random_atom(&mut r, 3);
    let ((), stats) = run_with(EngineBudget::unlimited(), true, || {
        for _ in 0..5 {
            let _ = c.satisfiable();
            let _ = c.implies_atom(&a);
        }
    })
    .expect("unlimited budget");
    // 5 direct sat checks plus one nested `c ∧ ¬a` check from the single
    // entailment miss (the other four entailments answer from the cache
    // without recursing).
    assert_eq!(stats.sat_checks, 6);
    assert_eq!(stats.entailment_checks, 5);
    assert!(
        stats.cache_hits >= 8,
        "4 repeats of each check must hit: {stats}"
    );
    assert!(
        stats.cache_hit_rate().expect("probes happened") > 0.5,
        "hit rate should dominate on a repeated workload: {stats}"
    );
}

#[test]
fn query_evaluation_reuses_cached_answers() {
    // Two FROM bindings probe the same entailment; the second one must be
    // answered from the cache within a single query context.
    let mut db = lyric::paper_example::database();
    let res = lyric::execute(
        &mut db,
        "SELECT DSK FROM Desk DSK, Office_Object CO
         WHERE DSK.drawer_center[C] AND (C(p,q) |= q <= 0)",
    )
    .expect("entailment query evaluates");
    // Two bindings (one per Office_Object) evaluate the same entailment;
    // the duplicate SELECT rows collapse to one.
    assert_eq!(res.rows.len(), 1);
    assert!(res.stats.entailment_checks >= 2, "{}", res.stats);
    assert!(
        res.stats.cache_hits > 0,
        "repeated entailment must hit: {}",
        res.stats
    );
}
