//! The PR's exact-counter acceptance check: the process-lifetime metric
//! registry must agree *exactly* with the per-query `EngineStats` the
//! evaluator hands back.
//!
//! A single `#[test]` (so no other test in this binary races the global
//! registry) runs a mixed serial/parallel query suite against a shared
//! database, summing each returned `EngineStats`, then asserts that the
//! registry deltas match: `lyric_queries_total` equals the number of
//! queries, the `lyric_query_duration_us` histogram saw one observation
//! per query, and every `lyric_engine_<counter>_total` delta equals the
//! corresponding summed per-query counter. A budget-exceeding query is
//! then checked to land in `lyric_budget_aborts_total` while still
//! counting as a query.

use lyric::metrics::{global, MetricValue, Snapshot};
use lyric::trace::stats::COUNTER_NAMES;
use lyric::{execute_shared, EngineBudget, ExecOptions, LyricError};
use lyric_bench::workload::{self, Q_LINEAR, Q_PAIRWISE};
use std::sync::Arc;

/// Sum of a counter family across all its label sets (0 when absent).
fn counter_total(snap: &Snapshot, name: &str) -> u64 {
    snap.families
        .iter()
        .filter(|f| f.name == name)
        .flat_map(|f| &f.series)
        .map(|s| match &s.value {
            MetricValue::Counter(v) => *v,
            _ => panic!("{name} is not a counter"),
        })
        .sum()
}

/// Observation count of a histogram family (0 when absent).
fn hist_count(snap: &Snapshot, name: &str) -> u64 {
    snap.families
        .iter()
        .filter(|f| f.name == name)
        .flat_map(|f| &f.series)
        .map(|s| match &s.value {
            MetricValue::Histogram(h) => h.count,
            _ => panic!("{name} is not a histogram"),
        })
        .sum()
}

#[test]
fn registry_deltas_equal_summed_query_stats() {
    let db = Arc::new(workload::office_db(10, 7));
    let before = global().snapshot();

    let mut queries = 0u64;
    let mut expected = [0u64; COUNTER_NAMES.len()];
    for q in [Q_LINEAR, Q_PAIRWISE] {
        for threads in [1usize, 2, 4] {
            let opts = ExecOptions::default().with_threads(threads);
            let res = execute_shared(&db, q, &opts).expect("suite query evaluates");
            for (slot, v) in expected.iter_mut().zip(res.stats.counters()) {
                *slot += v;
            }
            queries += 1;
        }
    }

    let after = global().snapshot();
    assert_eq!(
        counter_total(&after, "lyric_queries_total")
            - counter_total(&before, "lyric_queries_total"),
        queries,
        "every execute_shared call is one query"
    );
    assert_eq!(
        hist_count(&after, "lyric_query_duration_us")
            - hist_count(&before, "lyric_query_duration_us"),
        queries,
        "one latency observation per query"
    );
    for (i, name) in COUNTER_NAMES.iter().enumerate() {
        let family = format!("lyric_engine_{name}_total");
        let delta = counter_total(&after, &family) - counter_total(&before, &family);
        assert_eq!(
            delta, expected[i],
            "{family}: registry delta {delta} != summed per-query stats {}",
            expected[i]
        );
    }

    // A budget abort still counts as a query, and classifies its resource.
    // Boxes off: interval pruning answers this workload's sat checks
    // without any pivots, and the point here is hitting the pivot cap.
    let tight = EngineBudget::unlimited().with_max_pivots(1);
    let before = after;
    let err = execute_shared(
        &db,
        Q_PAIRWISE,
        &ExecOptions::default()
            .with_threads(2)
            .with_budget(tight)
            .with_boxes(false),
    )
    .expect_err("one pivot cannot evaluate the pairwise query");
    assert!(
        matches!(err, LyricError::BudgetExceeded { .. }),
        "expected a budget error, got {err:?}"
    );
    let after = global().snapshot();
    assert_eq!(
        counter_total(&after, "lyric_queries_total")
            - counter_total(&before, "lyric_queries_total"),
        1
    );
    assert_eq!(
        counter_total(&after, "lyric_budget_aborts_total")
            - counter_total(&before, "lyric_budget_aborts_total"),
        1,
        "the abort is classified under lyric_budget_aborts_total"
    );
}
