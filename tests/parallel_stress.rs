//! Stress and soak tests for concurrent query evaluation.
//!
//! Many OS threads fire [`lyric::execute_shared`] at one shared
//! [`lyric::Database`] with jittered per-query thread counts and budgets;
//! every answer must equal the precomputed serial answer, and budget trips
//! must classify identically no matter which thread hit them. These runs
//! exercise the sharded memo cache, the shared budget atomics, and the
//! worker pool under genuine OS-level contention rather than the
//! single-query fan-out the differential suite covers.

use lyric::{execute_shared, execute_with_options, EngineBudget, ExecOptions, LyricError};
use lyric_bench::workload::{self, Q_LINEAR, Q_PAIRWISE};
use std::sync::Arc;

fn opts(threads: usize) -> ExecOptions {
    ExecOptions::default().with_threads(threads)
}

/// Eight OS threads each run a mixed bag of queries against one shared
/// database, with per-call thread counts jittered from a seed. Every
/// answer must match its precomputed serial counterpart.
#[test]
fn concurrent_shared_database_queries_agree_with_serial() {
    let db = Arc::new(workload::office_db(12, 42));
    let queries = [Q_LINEAR, Q_PAIRWISE];
    let expected: Vec<_> = queries
        .iter()
        .map(|q| execute_shared(&db, q, &opts(1)).expect("serial baseline evaluates"))
        .collect();

    let mismatches = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let db = Arc::clone(&db);
                let expected = &expected;
                let queries = &queries;
                s.spawn(move || {
                    let mut bad = 0usize;
                    for rep in 0..3u64 {
                        for (i, q) in queries.iter().enumerate() {
                            // Deterministic jitter: thread count depends on
                            // the OS thread, the repeat, and the query.
                            let threads = 1 + ((t + rep + i as u64) % 4) as usize;
                            match execute_shared(&db, q, &opts(threads)) {
                                Ok(r) if r == expected[i] => {}
                                _ => bad += 1,
                            }
                        }
                    }
                    bad
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum::<usize>()
    });
    assert_eq!(mismatches, 0, "concurrent executions diverged from serial");
}

/// Concurrent budget-limited runs: every thread that trips the pivot
/// budget must report the same resource classification and limit as the
/// serial abort, regardless of contention on the shared atomics.
#[test]
fn concurrent_budget_aborts_classify_identically() {
    let db = Arc::new(workload::office_db(8, 42));
    // Boxes off: interval pruning answers this workload's sat checks
    // without any pivots, and the point here is hitting the pivot cap.
    let tight = EngineBudget::unlimited().with_max_pivots(20);
    let serial_err = execute_shared(
        &db,
        Q_PAIRWISE,
        &opts(1).with_budget(tight.clone()).with_boxes(false),
    )
    .expect_err("20 pivots cannot cover the pairwise query");
    let (serial_resource, serial_limit) = match &serial_err {
        LyricError::BudgetExceeded {
            resource, limit, ..
        } => (*resource, *limit),
        other => panic!("expected budget abort, got {other:?}"),
    };

    std::thread::scope(|s| {
        for t in 0..6usize {
            let db = Arc::clone(&db);
            let tight = tight.clone();
            s.spawn(move || {
                let o = opts(1 + t % 4).with_budget(tight).with_boxes(false);
                match execute_shared(&db, Q_PAIRWISE, &o) {
                    Err(LyricError::BudgetExceeded {
                        resource, limit, ..
                    }) => {
                        assert_eq!(resource, serial_resource, "resource classification");
                        assert_eq!(limit, serial_limit, "limit");
                    }
                    other => panic!("expected budget abort under contention, got {other:?}"),
                }
            });
        }
    });
}

/// Soak: a longer seeded sweep alternating databases and thread counts on
/// one OS thread pool, confirming no cross-query state leaks through the
/// global memo cache generations.
#[test]
fn soak_alternating_databases_and_thread_counts() {
    let dbs: Vec<_> = (0..4u64)
        .map(|seed| Arc::new(workload::office_db(6 + seed as usize, seed)))
        .collect();
    let expected: Vec<_> = dbs
        .iter()
        .map(|db| execute_shared(db, Q_LINEAR, &opts(1)).expect("serial baseline evaluates"))
        .collect();

    std::thread::scope(|s| {
        for t in 0..4usize {
            let dbs = &dbs;
            let expected = &expected;
            s.spawn(move || {
                for rep in 0..6usize {
                    let i = (t + rep) % dbs.len();
                    let threads = 1 + (t * 3 + rep) % 4;
                    let got = execute_shared(&dbs[i], Q_LINEAR, &opts(threads))
                        .expect("soak query evaluates");
                    assert_eq!(
                        got, expected[i],
                        "db {i} diverged at {threads} threads (rep {rep})"
                    );
                }
            });
        }
    });
}

/// Observability stays deterministic under concurrency: with many OS
/// threads logging queries at once, every captured query-log line is a
/// complete, parseable JSON object (whole-line writes — no byte
/// interleaving), each concurrent query produced exactly one line with
/// the right thread count, and the Prometheus rendering keeps its
/// guaranteed ordering (families sorted by name, label sets sorted
/// within a family).
#[test]
fn query_log_and_metrics_are_deterministic_under_concurrency() {
    let db = Arc::new(workload::office_db(8, 11));
    let buf = lyric::metrics::querylog::capture();

    // One whitespace variant of the linear query per (thread, rep): same
    // answer, distinct FNV hash — so this test's lines are identifiable
    // even if other tests in this binary log concurrently.
    let variant = |t: usize, rep: usize| format!("{}{}", Q_LINEAR, " ".repeat(1 + t * 4 + rep));
    const THREADS: usize = 6;
    const REPS: usize = 3;

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            let variant = &variant;
            s.spawn(move || {
                for rep in 0..REPS {
                    execute_shared(&db, &variant(t, rep), &opts(3))
                        .expect("logged query evaluates");
                }
            });
        }
    });

    let captured = String::from_utf8(buf.lock().unwrap().clone()).expect("log is UTF-8");
    lyric::metrics::querylog::set_sink(None);

    let mut seen = std::collections::BTreeMap::new();
    for line in captured.lines() {
        let json = lyric::trace::json::parse(line)
            .unwrap_or_else(|e| panic!("interleaved or malformed log line ({e}): {line}"));
        let hash = json
            .get("query_hash")
            .and_then(|v| v.as_str())
            .expect("every line carries a query_hash")
            .to_string();
        let threads = json
            .get("threads")
            .and_then(|v| v.as_f64())
            .map(|f| f as u64);
        *seen.entry((hash, threads)).or_insert(0u32) += 1;
    }
    for t in 0..THREADS {
        for rep in 0..REPS {
            let hash = format!(
                "{:016x}",
                lyric::metrics::querylog::query_hash(&variant(t, rep))
            );
            assert_eq!(
                seen.get(&(hash.clone(), Some(3))).copied(),
                Some(1),
                "query variant ({t}, {rep}) must log exactly once with threads=3"
            );
        }
    }

    // The Prometheus exposition keeps its deterministic shape even while
    // other tests mutate counters: families strictly sorted by name,
    // series sorted by label set, and the whole text parses.
    let text = lyric::metrics::render_prometheus();
    let exp = lyric::metrics::prometheus::parse(&text).expect("scrape parses");
    let names: Vec<&String> = exp.families.iter().map(|f| &f.name).collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted, "families must render in sorted order");
    for family in &exp.families {
        for sample in &family.samples {
            // The synthetic `le` bucket label is appended after the
            // (sorted) series labels; exclude it from the ordering check.
            let labels: Vec<&String> = sample
                .labels
                .iter()
                .map(|(k, _)| k)
                .filter(|k| k.as_str() != "le")
                .collect();
            let mut sorted = labels.clone();
            sorted.sort();
            assert_eq!(
                labels, sorted,
                "label keys of {} must render sorted",
                sample.name
            );
        }
    }
}

/// `execute_shared` takes `&Database` and therefore cannot run statements
/// that mutate the database: CREATE VIEW must be rejected as a type error,
/// not silently dropped.
#[test]
fn execute_shared_rejects_create_view() {
    const VIEW: &str = "CREATE VIEW X AS SUBCLASS OF Object_In_Room
         SELECT Y
         FROM Object_In_Room Y, Region X
         WHERE Y.catalog_object[CO] AND Y.location[L] AND CO.extent[E] AND CO.translation[D]
           AND (((u,v) | E AND D AND L(x,y)) |= X(u,v))";

    let db = lyric::paper_example::database();
    let err = execute_shared(&db, VIEW, &opts(2)).expect_err("CREATE VIEW must be rejected");
    match err {
        LyricError::TypeError(msg) => assert!(
            msg.contains("SELECT"),
            "message should point at SELECT-only: {msg}"
        ),
        other => panic!("expected type error, got {other:?}"),
    }

    // The read-only rejection is about mutation, not the statement itself:
    // the same view works through the mutable entry point.
    let mut mdb = lyric::paper_example::database();
    execute_with_options(&mut mdb, VIEW, &opts(1))
        .expect("CREATE VIEW works through execute_with_options");
}
