//! Concurrency differential tests: parallel evaluation must be
//! *observationally serial*.
//!
//! For every §4.1 paper query and for seeded random workloads, the answer
//! at 1, 2, 4, and 8 threads must be structurally identical to the serial
//! answer (same columns, same rows, same order) — and, for constraint
//! columns, denotation-equal by mutual entailment, so the check does not
//! depend on any syntactic normalization accident. With the memo cache
//! off, the evaluation is fully deterministic, so the merged per-worker
//! [`lyric::EngineStats`] must equal the serial counters *exactly*; and a
//! budget crossed under parallel execution must abort with the same
//! resource classification as the serial run.

use lyric::{execute_with_options, paper_example, EngineBudget, ExecOptions};
use lyric_bench::workload::{self, Q_LINEAR, Q_PAIRWISE};
use lyric_constraint::Dnf;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The §4.1 worked-example queries (the same set the bench report runs).
const PAPER_QUERIES: [&str; 5] = [
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
     FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
    "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
     FROM Desk DSK
     WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
    "SELECT DSK FROM Object_In_Room O, Desk DSK
     WHERE O.catalog_object[DSK] AND O.location[L]
       AND DSK.drawer_center[C] AND DSK.translation[D]
       AND DSK.drawer.extent[DRE] AND DSK.drawer.translation[DRD]
       AND (C(p,q) AND DRE(w1,z1) AND DRD(w1,z1,x1,y1,u1,v1)
            AND D(w,z,x,y,u,v) AND L(x,y) AND w = u1 AND z = v1
            AND 0 < u AND u < 20 AND 0 < v AND v < 10)",
    "SELECT MAX(w + z SUBJECT TO ((w,z) | E)), MIN(w SUBJECT TO ((w,z) | E))
     FROM Desk D WHERE D.extent[E]",
];

fn opts(threads: usize) -> ExecOptions {
    ExecOptions::default().with_threads(threads)
}

/// Structural equality plus denotation equality for constraint columns:
/// `a == b` already compares columns and rows cell-by-cell, and on top of
/// that every pair of aligned CST cells must be mutually entailing.
fn assert_same_answer(serial: &lyric::QueryResult, parallel: &lyric::QueryResult, label: &str) {
    assert_eq!(serial, parallel, "{label}: answers differ");
    for (sr, pr) in serial.rows.iter().zip(&parallel.rows) {
        for (sc, pc) in sr.iter().zip(pr) {
            if let (Some(a), Some(b)) = (sc.as_cst(), pc.as_cst()) {
                assert!(a.denotes_same(b), "{label}: CST cells not denotation-equal");
            }
        }
    }
}

/// Every §4.1 paper query: parallel answers at every thread count equal
/// the serial answer, structurally and by denotation.
#[test]
fn paper_queries_parallel_equals_serial() {
    for (i, q) in PAPER_QUERIES.iter().enumerate() {
        let serial = {
            let mut db = paper_example::database();
            execute_with_options(&mut db, q, &opts(1)).expect("paper query evaluates serially")
        };
        for threads in THREAD_COUNTS {
            let mut db = paper_example::database();
            let par = execute_with_options(&mut db, q, &opts(threads))
                .expect("paper query evaluates in parallel");
            assert_same_answer(
                &serial,
                &par,
                &format!("paper query {i} at {threads} threads"),
            );
        }
    }
}

/// With the memo cache disabled the evaluation is deterministic, so the
/// merged per-worker stat deltas must sum to *exactly* the serial
/// counters — nothing double-counted in the shared-atomic mirror, nothing
/// lost in the merge.
#[test]
fn merged_worker_stats_equal_serial_counters() {
    let db = workload::office_db(10, 42);
    let base = opts(1).with_cache(false);
    let serial = execute_with_options(&mut db.clone(), Q_LINEAR, &base)
        .expect("linear query evaluates serially");
    for threads in THREAD_COUNTS {
        let par = execute_with_options(&mut db.clone(), Q_LINEAR, &opts(threads).with_cache(false))
            .expect("linear query evaluates in parallel");
        assert_same_answer(&serial, &par, &format!("Q_LINEAR at {threads} threads"));
        assert_eq!(
            serial.stats, par.stats,
            "cache-off stats must be exactly serial at {threads} threads"
        );
    }
}

/// Arithmetic-tier sweep: at every thread count the answer and the
/// semantic (mode-independent) counters are identical with the
/// small-coefficient fast path on and off, so the concurrency layer and
/// the arithmetic representation compose without observable interaction.
#[test]
fn arith_tier_sweep_is_thread_count_invariant() {
    let db = workload::office_db(10, 42);
    for threads in THREAD_COUNTS {
        let run = |fast: bool| {
            execute_with_options(
                &mut db.clone(),
                Q_PAIRWISE,
                &opts(threads).with_cache(false).with_arith_fast(fast),
            )
            .expect("pairwise query evaluates")
        };
        let fast = run(true);
        let big = run(false);
        assert_same_answer(&big, &fast, &format!("tier sweep at {threads} threads"));
        assert_eq!(
            fast.stats.semantic(),
            big.stats.semantic(),
            "semantic counters diverge between tiers at {threads} threads"
        );
        assert_eq!(
            big.stats.arith_small_ops, 0,
            "BigInt-only run used the small tier at {threads} threads"
        );
        assert!(
            fast.stats.arith_small_ops > 0,
            "fast path never fired at {threads} threads"
        );
    }
}

/// A budget crossed under parallel execution aborts with the same error
/// classification (resource and limit) as the serial run.
#[test]
fn budget_aborts_classify_identically_under_parallelism() {
    let db = workload::office_db(8, 42);
    // Boxes off: interval pruning answers this workload's sat checks
    // without any pivots, and the point here is hitting the pivot cap.
    let tight = EngineBudget::unlimited().with_max_pivots(20);
    let serial_err = execute_with_options(
        &mut db.clone(),
        Q_PAIRWISE,
        &opts(1).with_budget(tight.clone()).with_boxes(false),
    )
    .expect_err("20 pivots cannot cover the pairwise query");
    for threads in THREAD_COUNTS {
        let par_err = execute_with_options(
            &mut db.clone(),
            Q_PAIRWISE,
            &opts(threads).with_budget(tight.clone()).with_boxes(false),
        )
        .expect_err("budget must also trip in parallel");
        match (&serial_err, &par_err) {
            (
                lyric::LyricError::BudgetExceeded {
                    resource: a,
                    limit: la,
                    ..
                },
                lyric::LyricError::BudgetExceeded {
                    resource: b,
                    limit: lb,
                    ..
                },
            ) => {
                assert_eq!(a, b, "resource classification at {threads} threads");
                assert_eq!(la, lb, "limit at {threads} threads");
            }
            other => panic!("both runs must be budget aborts, got {other:?}"),
        }
    }
}

/// Large DNF products and canonicalization under a multi-threaded engine
/// context produce bit-identical objects to the serial path (seeded sweep
/// over sizes; `Dnf` equality is structural, so this pins the
/// deterministic merge — including against the context-free serial
/// product, which never enters `parallel_map` at all).
#[test]
fn dnf_operations_are_thread_count_invariant() {
    for &(k, m, nvars, seed) in &[
        (8usize, 4usize, 3usize, 7u64),
        (12, 5, 3, 11),
        (16, 6, 4, 13),
    ] {
        let (a, b) = {
            let mut r = workload::rng(seed);
            (
                workload::random_dnf(&mut r, k, m, nvars),
                workload::random_dnf(&mut r, k, m, nvars),
            )
        };
        let run = |threads: usize| -> (Dnf, Dnf) {
            let o = ExecOptions::default()
                .with_cache(false)
                .with_threads(threads);
            let ((prod, simp), _stats) =
                lyric::engine::run_with_opts(o, || (a.and(&b), a.simplify()))
                    .expect("unlimited budget");
            (prod, simp)
        };
        let (prod1, simp1) = run(1);
        for threads in [2usize, 4, 8] {
            let (prod, simp) = run(threads);
            assert_eq!(prod1, prod, "DNF product differs at {threads} threads");
            assert_eq!(simp1, simp, "DNF simplify differs at {threads} threads");
        }
        // Outside any engine context `parallel_map` falls back to the plain
        // serial loop, so this pins the parallel product against code that
        // never touched the pool at all.
        assert_eq!(prod1, a.and(&b), "context-free product differs");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Seeded workload sweep: the E2 linear query over random office
    /// databases answers identically at every thread count.
    #[test]
    fn workload_answers_are_thread_count_invariant(n in 2usize..10, seed in 0u64..500) {
        let db = workload::office_db(n, seed);
        let serial = execute_with_options(&mut db.clone(), Q_LINEAR, &opts(1))
            .expect("linear query evaluates");
        for threads in [2usize, 4, 8] {
            let par = execute_with_options(&mut db.clone(), Q_LINEAR, &opts(threads))
                .expect("linear query evaluates");
            prop_assert_eq!(&serial, &par, "n={} seed={} threads={}", n, seed, threads);
        }
    }

    /// The factory LP workload (MAX … SUBJECT TO) is likewise invariant.
    #[test]
    fn factory_answers_are_thread_count_invariant(np in 2usize..6, seed in 0u64..100) {
        let db = workload::factory_db(np, 3, 2, seed);
        let q = workload::factory_query(3, 2);
        let serial = execute_with_options(&mut db.clone(), &q, &opts(1))
            .expect("factory query evaluates");
        let par = execute_with_options(&mut db.clone(), &q, &opts(4))
            .expect("factory query evaluates");
        prop_assert_eq!(serial, par);
    }
}
