//! Differential tests for the DNF algebra against the rasterized "direct
//! representation" oracle of `lyric_bench::gridrep`.
//!
//! `Grid::rasterize` evaluates membership *exactly* (rational arithmetic
//! at rational cell centers), so for quantifier-free 2-D regions the
//! rasterization of a constraint-algebra result must equal the pointwise
//! grid operation on the rasterized inputs — for every cell, with no
//! tolerance. `and` ↔ intersect, `or` ↔ union, `negate` ↔ complement,
//! and `simplify`/`strong_simplify` ↔ identity.

use lyric::constraint::{CstObject, Dnf, Var};
use lyric_bench::gridrep::Grid;
use lyric_bench::workload;
use proptest::prelude::*;

const LO: i64 = -16;
const HI: i64 = 16;
const RES: usize = 24;

/// Wrap a DNF over `v0, v1` as a quantifier-free 2-D object.
fn region(d: &Dnf) -> CstObject {
    CstObject::new(
        vec![Var::new("v0"), Var::new("v1")],
        d.disjuncts().iter().cloned(),
    )
}

fn raster(d: &Dnf) -> Grid {
    Grid::rasterize(&region(d), LO, HI, RES)
}

/// A random 2-D DNF; sizes stay small because `negate` is exponential in
/// the disjunct count by design (§3.1 keeps it out of the language).
fn random_region(seed: u64, k: usize, m: usize) -> Dnf {
    let mut r = workload::rng(seed);
    workload::random_dnf(&mut r, k, m, 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn and_matches_grid_intersection(seed in 0u64..1_000_000) {
        let a = random_region(seed, 4, 4);
        let b = random_region(seed.wrapping_add(0x9E37), 4, 4);
        prop_assert_eq!(raster(&a.and(&b)), raster(&a).intersect(&raster(&b)));
    }

    #[test]
    fn or_matches_grid_union(seed in 0u64..1_000_000) {
        let a = random_region(seed, 4, 4);
        let b = random_region(seed.wrapping_add(0x9E37), 4, 4);
        prop_assert_eq!(raster(&a.or(&b)), raster(&a).union(&raster(&b)));
    }

    #[test]
    fn negate_matches_grid_complement(seed in 0u64..1_000_000) {
        // The grid has no complement op; characterize it instead: the
        // negation is disjoint from the original and together they tile
        // every cell. Exact center evaluation makes this an iff.
        let a = random_region(seed, 3, 3);
        let g = raster(&a);
        let n = raster(&a.negate());
        prop_assert!(g.intersect(&n).is_empty(), "negation overlaps the original");
        prop_assert_eq!(g.union(&n).count_filled(), g.num_cells());
    }

    #[test]
    fn simplify_preserves_the_point_set(seed in 0u64..1_000_000) {
        let a = random_region(seed, 8, 5);
        let g = raster(&a);
        prop_assert_eq!(&raster(&a.simplify()), &g);
        prop_assert_eq!(&raster(&a.strong_simplify()), &g);
    }

    #[test]
    fn de_morgan_on_rasters(seed in 0u64..1_000_000) {
        // ¬(A ∨ B) = ¬A ∧ ¬B, checked through the oracle.
        let a = random_region(seed, 2, 3);
        let b = random_region(seed.wrapping_add(0x79B9), 2, 3);
        prop_assert_eq!(
            raster(&a.or(&b).negate()),
            raster(&a.negate()).intersect(&raster(&b.negate()))
        );
    }

    /// The constraint algebra is arithmetic-tier invariant: running the
    /// same ops under an engine context with the small-coefficient fast
    /// path on and off yields *structurally* identical DNFs (Rational
    /// equality is value-based across the two representations, so this
    /// pins canonicalization, simplification, and FM elimination — not
    /// just the denoted point sets).
    #[test]
    fn dnf_algebra_is_arith_tier_invariant(seed in 0u64..1_000_000) {
        let a = random_region(seed, 4, 4);
        let b = random_region(seed.wrapping_add(0x9E37), 4, 4);
        let run = |fast: bool| {
            let o = lyric::ExecOptions::default()
                .with_cache(false)
                .with_arith_fast(fast);
            let (out, _stats) = lyric::engine::run_with_opts(o, || {
                (a.and(&b), a.or(&b), a.simplify(), a.negate())
            })
            .expect("unlimited budget");
            out
        };
        let fast = run(true);
        let big = run(false);
        prop_assert_eq!(&fast.0, &big.0, "product differs between tiers");
        prop_assert_eq!(&fast.1, &big.1, "union differs between tiers");
        prop_assert_eq!(&fast.2, &big.2, "simplify differs between tiers");
        prop_assert_eq!(&fast.3, &big.3, "negate differs between tiers");
        // And both agree with the rasterized oracle.
        prop_assert_eq!(raster(&fast.0), raster(&a).intersect(&raster(&b)));
    }

    #[test]
    fn grid_occupancy_witnesses_satisfiability(seed in 0u64..1_000_000) {
        // One-directional: a filled cell center is a satisfying point, so
        // a nonempty raster forces satisfiability (the converse can fail —
        // a sliver region may dodge every cell center).
        let a = random_region(seed, 4, 4);
        if !raster(&a).is_empty() {
            prop_assert!(a.satisfiable());
        }
        // And entailment forces raster containment.
        let b = random_region(seed.wrapping_add(1), 4, 4);
        let both = a.and(&b);
        prop_assert!(raster(&b).contains(&raster(&both)));
    }
}
