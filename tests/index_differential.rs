//! Store-index differential tests: FROM-binding index probes must be
//! *observationally free*.
//!
//! The planner in `eval.rs` may only change *which extent members get
//! instantiated*, never the answer: for every §4.1 paper query and for
//! seeded office and scaling workloads, evaluation with the index on and
//! off must produce structurally identical results at every thread
//! count and under both box-pruning modes. Accounting invariants ride
//! along: with the index off both index counters are zero; with it on,
//! pruning can only ever *save* downstream work (`sat_checks` and
//! `lp_runs` never increase), and the semantic counters are
//! thread-count-invariant within each configuration.
//!
//! The memo cache stays off throughout so the two runs of each pair do
//! identical logical work and the monotonicity claims are exact.

use lyric::{execute_shared, paper_example, ExecOptions};
use lyric_bench::workload::{self, Q_LINEAR};
use proptest::prelude::*;

const PAPER_QUERIES: [&str; 5] = [
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
     FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
    "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
     FROM Desk DSK
     WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
    "SELECT DSK FROM Object_In_Room O, Desk DSK
     WHERE O.catalog_object[DSK] AND O.location[L]
       AND DSK.drawer_center[C] AND DSK.translation[D]
       AND DSK.drawer.extent[DRE] AND DSK.drawer.translation[DRD]
       AND (C(p,q) AND DRE(w1,z1) AND DRD(w1,z1,x1,y1,u1,v1)
            AND D(w,z,x,y,u,v) AND L(x,y) AND w = u1 AND z = v1
            AND 0 < u AND u < 20 AND 0 < v AND v < 10)",
    "SELECT MAX(w + z SUBJECT TO ((w,z) | E)), MIN(w SUBJECT TO ((w,z) | E))
     FROM Desk D WHERE D.extent[E]",
];

fn opts(threads: usize, boxes: bool, index: bool) -> ExecOptions {
    ExecOptions::default()
        .with_threads(threads)
        .with_boxes(boxes)
        .with_index(index)
        .with_cache(false)
}

/// Structural equality plus denotation equality for constraint columns
/// (mirroring the box-pruning differential: no dependence on a syntactic
/// normalization accident).
fn assert_same_answer(a: &lyric::QueryResult, b: &lyric::QueryResult, label: &str) {
    assert_eq!(a, b, "{label}: answers differ");
    for (ar, br) in a.rows.iter().zip(&b.rows) {
        for (ac, bc) in ar.iter().zip(br) {
            if let (Some(x), Some(y)) = (ac.as_cst(), bc.as_cst()) {
                assert!(x.denotes_same(y), "{label}: CST cells not denotation-equal");
            }
        }
    }
}

/// Run one query across the full {threads} × {boxes} × {index} matrix
/// and assert the observational-equivalence bundle. Returns the
/// index-on single-thread boxes-on stats for callers that want to check
/// the probes actually fired.
fn assert_index_free(db: &lyric::oodb::Database, q: &str, label: &str) -> lyric::EngineStats {
    let mut probing_stats = None;
    for boxes in [true, false] {
        for threads in [1usize, 4] {
            let tag = format!("{label} threads={threads} boxes={boxes}");
            let on = execute_shared(db, q, &opts(threads, boxes, true))
                .unwrap_or_else(|e| panic!("{tag}: index-on run failed: {e}"));
            let off = execute_shared(db, q, &opts(threads, boxes, false))
                .unwrap_or_else(|e| panic!("{tag}: index-off run failed: {e}"));
            assert_same_answer(&on, &off, &tag);
            assert_eq!(
                off.stats.index_probes + off.stats.index_pruned,
                0,
                "{tag}: index off must never touch the index layer"
            );
            assert!(
                on.stats.sat_checks <= off.stats.sat_checks,
                "{tag}: pruning added sat checks ({} > {})",
                on.stats.sat_checks,
                off.stats.sat_checks
            );
            assert!(
                on.stats.lp_runs <= off.stats.lp_runs,
                "{tag}: pruning added LP runs ({} > {})",
                on.stats.lp_runs,
                off.stats.lp_runs
            );
            assert!(
                on.stats.index_pruned <= on.stats.index_probes * (db.num_objects() as u64),
                "{tag}: pruned more than the probes could have seen"
            );
            if threads == 1 && boxes {
                probing_stats = Some(on.stats);
            }
            // Semantic counters are thread-count-invariant within one
            // configuration: compare each 4-thread run against its own
            // 1-thread twin.
            if threads == 4 {
                for (mode, res) in [(true, &on), (false, &off)] {
                    let serial = execute_shared(db, q, &opts(1, boxes, mode))
                        .unwrap_or_else(|e| panic!("{tag}: serial twin failed: {e}"));
                    assert_eq!(
                        res.stats.semantic(),
                        serial.stats.semantic(),
                        "{tag} index={mode}: semantic counters vary with thread count"
                    );
                }
            }
        }
    }
    probing_stats.expect("matrix ran")
}

/// Every §4.1 paper query across the full matrix.
#[test]
fn paper_queries_are_index_invariant() {
    let db = paper_example::database();
    for (i, q) in PAPER_QUERIES.iter().enumerate() {
        assert_index_free(&db, q, &format!("paper query {i}"));
    }
}

/// The seeded office workload (the E2 linear probe) across the matrix.
#[test]
fn office_workload_is_index_invariant() {
    let db = workload::office_db(10, 42);
    assert_index_free(&db, Q_LINEAR, "office n=10");
}

/// The scaling workload's selective probes across the matrix — and here
/// the index must actually bite: each probe fires and prunes most of the
/// extent, yet the answers stay bit-identical to the scans above.
#[test]
fn scaling_probes_are_index_invariant_and_actually_prune() {
    let n = 400usize;
    let db = workload::scaling_db(n, 7);
    for (name, q) in [
        ("weight eq", workload::q_weight_eq(123)),
        ("weight range", workload::q_weight_ge(n as i64 - 20)),
        ("region window", workload::q_region_window(n as i64 / 2)),
    ] {
        let stats = assert_index_free(&db, &q, name);
        assert!(stats.index_probes > 0, "{name}: probe never fired: {stats}");
        assert!(
            stats.index_pruned as usize > n / 2,
            "{name}: selective probe pruned too little: {stats}"
        );
    }
}

/// Regression for a latent gap: `execute_shared` rejects CREATE VIEW
/// (it mutates the database), and the rejection must hold on the
/// indexed path too — the planner must not pre-build an index or touch
/// the cache slot for a statement that is about to be refused.
#[test]
fn shared_create_view_is_rejected_with_index_on() {
    let db = paper_example::database();
    let generation = db.data_generation();
    let err = execute_shared(
        &db,
        "CREATE VIEW Wide_Desk AS SUBCLASS OF Desk SELECT D FROM Desk D",
        &opts(1, true, true),
    )
    .expect_err("CREATE VIEW must be rejected on the shared path");
    let msg = err.to_string();
    assert!(
        msg.contains("SELECT statements only"),
        "unexpected rejection message: {msg}"
    );
    assert_eq!(
        db.data_generation(),
        generation,
        "a rejected statement must not advance the data generation"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seeded sweep: random office databases stay index-invariant on the
    /// E2 linear query across the whole matrix.
    #[test]
    fn random_office_answers_are_index_invariant(n in 2usize..8, seed in 0u64..500) {
        let db = workload::office_db(n, seed);
        assert_index_free(&db, Q_LINEAR, &format!("office n={n} seed={seed}"));
    }

    /// Seeded sweep: random scaling databases with random probe windows
    /// stay index-invariant — equality, range, and box probes alike.
    #[test]
    fn random_scaling_probes_are_index_invariant(
        n in 20usize..80,
        seed in 0u64..500,
        k in 0i64..100,
    ) {
        let db = workload::scaling_db(n, seed);
        assert_index_free(&db, &workload::q_weight_eq(k), &format!("eq n={n} seed={seed} k={k}"));
        assert_index_free(&db, &workload::q_weight_ge(k), &format!("ge n={n} seed={seed} k={k}"));
        assert_index_free(
            &db,
            &workload::q_region_window(k),
            &format!("window n={n} seed={seed} k={k}"),
        );
    }
}
