//! E7 correctness: the §5 flat translation + constraint algebra computes
//! exactly the answers of the direct object evaluator, across synthetic
//! databases of several sizes and seeds.

use lyric::parse_query;
use lyric_bench::workload::{office_db, Q_LINEAR};
use lyric_constraint::{CstObject, Var};
use lyric_flatrel::FlatDb;
use lyric_oodb::Oid;

/// The flat-algebra plan for [`Q_LINEAR`] (see the E7 bench and report).
fn flat_linear_regions(flat: &FlatDb) -> Vec<(Oid, CstObject)> {
    let oir = flat.extent("Object_In_Room").unwrap();
    let loc = flat.attr("Object_In_Room", "location").unwrap();
    let cat = flat.attr("Object_In_Room", "catalog_object").unwrap();
    let ext = flat
        .attr("Office_Object", "extent")
        .unwrap()
        .rename_col("obj", "cat_obj");
    let tr = flat
        .attr("Office_Object", "translation")
        .unwrap()
        .rename_col("obj", "cat_obj");
    let projected = oir
        .join(loc, &[("obj", "obj")])
        .join(cat, &[("obj", "obj")])
        .rename_col("val", "cat_obj")
        .join(&ext, &[("cat_obj", "cat_obj")])
        .join(&tr, &[("cat_obj", "cat_obj")])
        .project(&["obj"], &[Var::new("u"), Var::new("v")]);
    let mut out: Vec<(Oid, CstObject)> = Vec::new();
    for t in projected.tuples() {
        let obj = t.values[0].clone();
        let piece =
            CstObject::from_conjunction(vec![Var::new("u"), Var::new("v")], t.constraint.clone());
        match out.iter_mut().find(|(o, _)| *o == obj) {
            Some((_, acc)) => *acc = acc.or(&piece),
            None => out.push((obj, piece)),
        }
    }
    out
}

#[test]
fn flat_translation_matches_direct_evaluator() {
    let parsed = parse_query(Q_LINEAR).unwrap();
    for (n, seed) in [(4usize, 1u64), (12, 2), (24, 3)] {
        let db = office_db(n, seed);
        let mut d = db.clone();
        let direct = lyric::execute_parsed(&mut d, &parsed).unwrap();
        let flat = FlatDb::from_database(&db);
        let regions = flat_linear_regions(&flat);

        assert_eq!(
            direct.rows.len(),
            regions.len(),
            "row count at n={n} seed={seed}"
        );
        for row in &direct.rows {
            let obj = &row[0];
            let want = row[1].as_cst().unwrap();
            let got = &regions
                .iter()
                .find(|(o, _)| o == obj)
                .expect("object present")
                .1;
            assert!(
                got.denotes_same(want),
                "region mismatch for {obj} at n={n} seed={seed}: flat={got} direct={want}"
            );
        }
    }
}

#[test]
fn flat_selection_matches_direct_filter() {
    // Direct: desks colored red. Flat: σ_color='red'(Office_Object_color)
    // ⋈ Desk extent relation.
    let db = office_db(10, 5);
    let mut d = db.clone();
    let direct = lyric::execute_parsed(
        &mut d,
        &parse_query("SELECT X FROM Desk X WHERE X.color = 'red'").unwrap(),
    )
    .unwrap();
    let flat = FlatDb::from_database(&db);
    let red = flat
        .extent("Desk")
        .unwrap()
        .join(flat.attr("Desk", "color").unwrap(), &[("obj", "obj")])
        .select_eq("val", &Oid::str("red"));
    let mut direct_set: Vec<Oid> = direct.rows.iter().map(|r| r[0].clone()).collect();
    let mut flat_set: Vec<Oid> = red.tuples().iter().map(|t| t.values[0].clone()).collect();
    direct_set.sort();
    flat_set.sort();
    flat_set.dedup();
    assert_eq!(direct_set, flat_set);
}

#[test]
fn flat_constraint_selection_matches_satisfiability_predicate() {
    // Direct: room objects whose footprint reaches u >= 150.
    let db = office_db(16, 8);
    let mut d = db.clone();
    let direct = lyric::execute_parsed(
        &mut d,
        &parse_query(
            "SELECT O FROM Object_In_Room O
             WHERE O.catalog_object[C] AND C.extent[E] AND C.translation[D] AND O.location[L]
               AND (E AND D AND L(x,y) AND u >= 150)",
        )
        .unwrap(),
    )
    .unwrap();
    // Flat: join the same relations and add the constraint atom.
    let flat = FlatDb::from_database(&db);
    let joined = flat
        .extent("Object_In_Room")
        .unwrap()
        .join(
            flat.attr("Object_In_Room", "location").unwrap(),
            &[("obj", "obj")],
        )
        .join(
            flat.attr("Object_In_Room", "catalog_object").unwrap(),
            &[("obj", "obj")],
        )
        .rename_col("val", "cat_obj")
        .join(
            &flat
                .attr("Office_Object", "extent")
                .unwrap()
                .rename_col("obj", "cat_obj"),
            &[("cat_obj", "cat_obj")],
        )
        .join(
            &flat
                .attr("Office_Object", "translation")
                .unwrap()
                .rename_col("obj", "cat_obj"),
            &[("cat_obj", "cat_obj")],
        )
        .select_constraint(&[lyric_constraint::Atom::ge(
            lyric_constraint::LinExpr::var(Var::new("u")),
            lyric_constraint::LinExpr::from(150),
        )]);
    let mut direct_set: Vec<Oid> = direct.rows.iter().map(|r| r[0].clone()).collect();
    let mut flat_set: Vec<Oid> = joined
        .tuples()
        .iter()
        .map(|t| t.values[0].clone())
        .collect();
    direct_set.sort();
    direct_set.dedup();
    flat_set.sort();
    flat_set.dedup();
    assert_eq!(direct_set, flat_set);
}
