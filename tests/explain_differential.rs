//! Explain differential tests: EXPLAIN ANALYZE must be *observationally
//! free* and its attribution *exact*.
//!
//! For every §4.1 paper query, across threads {1, 4} × interval boxes
//! on/off × the arithmetic fast path on/off:
//!
//! * the explained answer (columns, rows, CST denotations) is
//!   bit-identical to the plain evaluation, and the semantic counters
//!   (`EngineStats::semantic`) agree — the instrumentation only observes;
//! * Σ per-node exclusive counters equals the explained run's
//!   `QueryResult::stats` **exactly** (the trace→plan fold is total);
//! * Σ per-node exclusive time equals the trace's summed span self-time
//!   exactly, and on serial runs never exceeds the traced total (the
//!   collector's saturating-subtraction tolerance);
//! * the root node's `rows_out` is the answer cardinality, and the
//!   per-node row counters are identical at every thread count (row
//!   totals are multiset-invariant over the work distribution);
//! * the JSON document passes the schema validator, and the shape hash is
//!   stable for a query text across runs and thread counts.

use lyric::trace::plan::validate_plan_json;
use lyric::{execute_explained_with_options, execute_with_options, paper_example, ExecOptions};

const PAPER_QUERIES: [&str; 5] = [
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
     FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
    "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
     FROM Desk DSK
     WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
    "SELECT DSK FROM Object_In_Room O, Desk DSK
     WHERE O.catalog_object[DSK] AND O.location[L]
       AND DSK.drawer_center[C] AND DSK.translation[D]
       AND DSK.drawer.extent[DRE] AND DSK.drawer.translation[DRD]
       AND (C(p,q) AND DRE(w1,z1) AND DRD(w1,z1,x1,y1,u1,v1)
            AND D(w,z,x,y,u,v) AND L(x,y) AND w = u1 AND z = v1
            AND 0 < u AND u < 20 AND 0 < v AND v < 10)",
    "SELECT MAX(w + z SUBJECT TO ((w,z) | E)), MIN(w SUBJECT TO ((w,z) | E))
     FROM Desk D WHERE D.extent[E]",
];

fn opts(threads: usize, boxes: bool, fast: bool) -> ExecOptions {
    ExecOptions::default()
        .with_threads(threads)
        .with_boxes(boxes)
        .with_arith_fast(fast)
}

/// Structural equality plus denotation equality for constraint columns.
fn assert_same_answer(a: &lyric::QueryResult, b: &lyric::QueryResult, label: &str) {
    assert_eq!(a, b, "{label}: answers differ");
    for (ar, br) in a.rows.iter().zip(&b.rows) {
        for (ac, bc) in ar.iter().zip(br) {
            if let (Some(x), Some(y)) = (ac.as_cst(), bc.as_cst()) {
                assert!(x.denotes_same(y), "{label}: CST cells not denotation-equal");
            }
        }
    }
}

/// Run one query plain and explained under the same options and assert
/// the full bundle: identical answer, exact attribution, valid JSON.
fn assert_explain_free(
    db: &lyric::oodb::Database,
    q: &str,
    o: &ExecOptions,
    label: &str,
) -> (u64, Vec<(u64, u64)>) {
    let plain = execute_with_options(&mut db.clone(), q, o)
        .unwrap_or_else(|e| panic!("{label}: plain run failed: {e}"));
    let (explained, report) = execute_explained_with_options(db, q, o)
        .unwrap_or_else(|e| panic!("{label}: explained run failed: {e}"));
    assert_same_answer(&explained, &plain, label);
    assert_eq!(
        explained.stats.semantic(),
        plain.stats.semantic(),
        "{label}: semantic counters differ"
    );

    let a = report.analysis.as_ref().expect("analyzed report");
    assert_eq!(
        a.summed_stats(),
        explained.stats,
        "{label}: per-node counters do not sum to the query stats"
    );
    assert_eq!(
        a.summed_self_time(),
        a.total_self,
        "{label}: per-node self time does not sum to the trace self time"
    );
    if o.threads <= 1 {
        assert!(
            a.total_self <= a.total,
            "{label}: serial self-time sum {:?} exceeds traced total {:?}",
            a.total_self,
            a.total
        );
    }
    assert_eq!(
        a.nodes[0].rows_out,
        explained.rows.len() as u64,
        "{label}: root rows_out is not the answer cardinality"
    );
    assert_eq!(
        a.nodes.len(),
        report.plan.node_count(),
        "{label}: one observation slot per plan node"
    );

    let json = report.to_json().to_string();
    let n = validate_plan_json(&json).unwrap_or_else(|e| panic!("{label}: invalid JSON: {e}"));
    assert_eq!(n, report.plan.node_count(), "{label}: node count mismatch");

    let rows = a.nodes.iter().map(|o| (o.rows_in, o.rows_out)).collect();
    (report.shape_hash, rows)
}

/// The full matrix: paper corpus × threads × boxes × arithmetic tiers.
/// Row counters and the shape hash must agree across every cell.
#[test]
fn paper_queries_are_explain_invariant() {
    let db = paper_example::database();
    for (i, q) in PAPER_QUERIES.iter().enumerate() {
        let mut baseline: Option<(u64, Vec<(u64, u64)>)> = None;
        for threads in [1usize, 4] {
            for boxes in [true, false] {
                for fast in [true, false] {
                    let label =
                        format!("paper query {i} threads={threads} boxes={boxes} fast={fast}");
                    let got = assert_explain_free(&db, q, &opts(threads, boxes, fast), &label);
                    match &baseline {
                        None => baseline = Some(got),
                        Some((hash, rows)) => {
                            assert_eq!(got.0, *hash, "{label}: shape hash not stable");
                            assert_eq!(&got.1, rows, "{label}: per-node rows not deterministic");
                        }
                    }
                }
            }
        }
    }
}

/// Repeated explained runs of one query keep the same shape hash while
/// the memo cache warms (counters may differ; the shape may not).
#[test]
fn shape_hash_survives_cache_warming() {
    let db = paper_example::database();
    let o = ExecOptions::default();
    let (_, first) = execute_explained_with_options(&db, PAPER_QUERIES[1], &o).unwrap();
    let (_, second) = execute_explained_with_options(&db, PAPER_QUERIES[1], &o).unwrap();
    assert_eq!(first.shape_hash, second.shape_hash);
    assert_eq!(first.plan, second.plan, "static plan is identical");
}

/// Budget aborts surface identically with and without explain.
#[test]
fn explained_budget_aborts_match_plain() {
    use lyric::EngineBudget;
    let db = paper_example::database();
    let o = ExecOptions::default().with_budget(EngineBudget::default().with_max_pivots(1));
    let q = PAPER_QUERIES[4]; // the LP query must pivot
    let plain = execute_with_options(&mut db.clone(), q, &o);
    let explained = execute_explained_with_options(&db, q, &o);
    match (&plain, &explained) {
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        other => panic!(
            "expected both to abort, got plain={:?} explained-ok={}",
            other.0.as_ref().err(),
            other.1.is_ok()
        ),
    }
}
