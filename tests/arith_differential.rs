//! Arithmetic differential tests: the small-coefficient fast path must be
//! *observationally BigInt*.
//!
//! Every §4.1 paper query and the seeded E2/E8 workloads are evaluated
//! twice — once with [`ExecOptions::with_arith_fast`] enabled (the
//! two-tier `i64`-inline representation) and once disabled (every value
//! lives in the all-`BigInt` tier, exactly the pre-fast-path engine).
//! The answers must be structurally identical and denotation-equal, and
//! with the memo cache off the *semantic* engine counters (everything
//! except the three arithmetic-tier op counters, which by construction
//! differ between modes) must match exactly: same pivots, same FM
//! eliminations, same entailment checks, same arena bytes. On top of
//! that, the tier counters themselves are pinned: the BigInt-only run
//! must report zero small-tier ops, and the fast run must actually use
//! the small tier on these all-small-coefficient workloads.

use lyric::{execute_with_options, paper_example, ExecOptions};
use lyric_bench::workload::{self, Q_LINEAR, Q_PAIRWISE};

/// The §4.1 worked-example queries (the same set the bench report runs).
const PAPER_QUERIES: [&str; 5] = [
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
     FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
    "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
     FROM Desk DSK
     WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
    "SELECT DSK FROM Object_In_Room O, Desk DSK
     WHERE O.catalog_object[DSK] AND O.location[L]
       AND DSK.drawer_center[C] AND DSK.translation[D]
       AND DSK.drawer.extent[DRE] AND DSK.drawer.translation[DRD]
       AND (C(p,q) AND DRE(w1,z1) AND DRD(w1,z1,x1,y1,u1,v1)
            AND D(w,z,x,y,u,v) AND L(x,y) AND w = u1 AND z = v1
            AND 0 < u AND u < 20 AND 0 < v AND v < 10)",
    "SELECT MAX(w + z SUBJECT TO ((w,z) | E)), MIN(w SUBJECT TO ((w,z) | E))
     FROM Desk D WHERE D.extent[E]",
];

fn opts(fast: bool) -> ExecOptions {
    ExecOptions::default()
        .with_arith_fast(fast)
        .with_cache(false)
}

/// Structural equality plus denotation equality for constraint columns,
/// plus exact equality of the mode-independent (semantic) stat counters.
fn assert_same_result(fast: &lyric::QueryResult, big: &lyric::QueryResult, label: &str) {
    assert_eq!(fast.columns, big.columns, "{label}: columns differ");
    assert_eq!(fast.rows, big.rows, "{label}: rows differ");
    for (fr, br) in fast.rows.iter().zip(&big.rows) {
        for (fc, bc) in fr.iter().zip(br) {
            if let (Some(a), Some(b)) = (fc.as_cst(), bc.as_cst()) {
                assert!(a.denotes_same(b), "{label}: CST cells not denotation-equal");
            }
        }
    }
    assert_eq!(
        fast.stats.semantic(),
        big.stats.semantic(),
        "{label}: semantic counters diverge between arithmetic tiers"
    );
}

/// Pin the tier counters themselves: BigInt-only runs never touch the
/// small tier, and the fast path actually fires on small coefficients.
fn assert_tier_counters(fast: &lyric::QueryResult, big: &lyric::QueryResult, label: &str) {
    assert_eq!(
        big.stats.arith_small_ops, 0,
        "{label}: disabled fast path still produced small-tier ops"
    );
    if big.stats.arith_big_ops > 0 {
        assert!(
            fast.stats.arith_small_ops > 0,
            "{label}: fast path never fired on an all-small workload"
        );
    } else {
        // A query with no arithmetic at all stays silent in both tiers.
        assert_eq!(fast.stats.arith_small_ops, 0, "{label}");
    }
}

/// Every §4.1 paper query answers identically with the fast path on and
/// off, and the semantic counters match exactly.
#[test]
fn paper_queries_fast_path_equals_bigint() {
    for (i, q) in PAPER_QUERIES.iter().enumerate() {
        let fast = execute_with_options(&mut paper_example::database(), q, &opts(true))
            .expect("paper query evaluates with fast path");
        let big = execute_with_options(&mut paper_example::database(), q, &opts(false))
            .expect("paper query evaluates on BigInt tier");
        let label = format!("paper query {i}");
        assert_same_result(&fast, &big, &label);
        assert_tier_counters(&fast, &big, &label);
    }
}

/// The seeded E2 office workloads (linear scan and the pairwise join
/// that dominates the LP benchmarks) are tier-invariant too.
#[test]
fn office_workloads_fast_path_equals_bigint() {
    let db = workload::office_db(10, 42);
    for (name, q) in [("Q_LINEAR", Q_LINEAR), ("Q_PAIRWISE", Q_PAIRWISE)] {
        let fast = execute_with_options(&mut db.clone(), q, &opts(true))
            .expect("office query evaluates with fast path");
        let big = execute_with_options(&mut db.clone(), q, &opts(false))
            .expect("office query evaluates on BigInt tier");
        assert_same_result(&fast, &big, name);
        assert_tier_counters(&fast, &big, name);
    }
}

/// The E8 factory LP workload (MAX … SUBJECT TO over generated product
/// mixes) exercises the simplex pivot loop hardest; answers and semantic
/// counters must still be bit-identical across tiers.
#[test]
fn factory_workload_fast_path_equals_bigint() {
    for &(np, seed) in &[(3usize, 7u64), (5, 11)] {
        let db = workload::factory_db(np, 3, 2, seed);
        let q = workload::factory_query(3, 2);
        let fast = execute_with_options(&mut db.clone(), &q, &opts(true))
            .expect("factory query evaluates with fast path");
        let big = execute_with_options(&mut db.clone(), &q, &opts(false))
            .expect("factory query evaluates on BigInt tier");
        let label = format!("factory np={np} seed={seed}");
        assert_same_result(&fast, &big, &label);
        assert_tier_counters(&fast, &big, &label);
    }
}

/// The tier toggle composes with the thread pool: a multi-threaded fast
/// run equals a serial BigInt run, semantically and by answer (workers
/// inherit the region's arithmetic mode through `RegionPlan`).
#[test]
fn fast_path_is_thread_count_invariant() {
    let db = workload::office_db(8, 42);
    let big_serial = execute_with_options(&mut db.clone(), Q_PAIRWISE, &opts(false))
        .expect("pairwise query evaluates on BigInt tier");
    for threads in [2usize, 4, 8] {
        let fast_par = execute_with_options(
            &mut db.clone(),
            Q_PAIRWISE,
            &opts(true).with_threads(threads),
        )
        .expect("pairwise query evaluates in parallel with fast path");
        assert_same_result(
            &fast_par,
            &big_serial,
            &format!("Q_PAIRWISE fast@{threads} threads vs big serial"),
        );
    }
}

/// `ExecOptions::default()` takes its arithmetic mode from the
/// process-wide default (the `LYRIC_ARITH_FAST` environment variable,
/// on unless explicitly "0"), so deployments can A/B the tiers without
/// touching code.
#[test]
fn default_options_follow_process_default() {
    assert_eq!(
        ExecOptions::default().arith_fast,
        lyric_arith::default_fast_path()
    );
}
