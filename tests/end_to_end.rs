//! Cross-crate end-to-end scenarios: database construction through
//! `lyric_oodb`, querying through `lyric`, answer verification through
//! `lyric_constraint`, plus updates and error paths.

use lyric::paper_example::{box2, point2, translation2};
use lyric::{execute, LyricError};
use lyric_arith::Rational;
use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
use lyric_oodb::{Database, Oid, Value};

fn r(n: i64) -> Rational {
    Rational::from_int(n)
}

/// Moving a desk (a completely general CST update, §6) changes query
/// answers accordingly.
#[test]
fn update_then_requery() {
    let mut db = lyric::paper_example::database();
    let q = "SELECT O, ((u,v) | E AND D AND L(x,y))
             FROM Object_In_Room O
             WHERE O.catalog_object[C] AND C.extent[E] AND C.translation[D] AND O.location[L]";
    let before = execute(&mut db, q).unwrap();
    let desk_region_before = before
        .rows
        .iter()
        .find(|row| row[0] == Oid::named("my_desk"))
        .unwrap()[1]
        .as_cst()
        .unwrap()
        .clone();
    assert!(desk_region_before.contains_point(&[r(2), r(2)]));

    // Move the desk 10 units right.
    db.set_attr(
        &Oid::named("my_desk"),
        "location",
        Value::Scalar(Oid::cst(point2("x", "y", 16, 4))),
    )
    .unwrap();
    let after = execute(&mut db, q).unwrap();
    let desk_region_after = after
        .rows
        .iter()
        .find(|row| row[0] == Oid::named("my_desk"))
        .unwrap()[1]
        .as_cst()
        .unwrap()
        .clone();
    assert!(!desk_region_after.contains_point(&[r(2), r(2)]));
    assert!(desk_region_after.contains_point(&[r(12), r(2)]));
    assert!(desk_region_after.denotes_same(&box2("u", "v", 12, 20, 2, 6)));
}

/// The same CST object inserted twice has one logical oid (identity =
/// canonical form, §3.1) and joins across objects through it.
#[test]
fn cst_oid_identity_joins() {
    let mut db = lyric::paper_example::database();
    // The desk's drawer and the cabinet's drawer share the same extent
    // constraint: a query joining on the oid sees them as equal.
    let res = execute(
        &mut db,
        "SELECT D1, D2 FROM Drawer D1, Drawer D2
         WHERE D1.extent[E] AND D2.extent[E] AND D1 != D2",
    )
    .unwrap();
    // Both drawers have extent ((w,z) | -1<=w<=1 ∧ -1<=z<=1): the shared
    // selector variable E forces oid equality, so both ordered pairs
    // appear.
    assert_eq!(res.rows.len(), 2);
}

/// Disjunctive constraint data: an object whose extent is a union of two
/// boxes (an L-shaped desk) flows through queries and optimization.
#[test]
fn disjunctive_extent() {
    let mut db = Database::new(lyric::paper_example::schema()).unwrap();
    db.declare_instance("Color", Oid::str("red")).unwrap();
    let l_shape = box2("w", "z", -4, 0, -2, 2).or(&box2("w", "z", 0, 4, -2, 0));
    db.insert(
        Oid::named("l_drawer"),
        "Drawer",
        [
            (
                "extent",
                Value::Scalar(Oid::cst(box2("w", "z", -1, 1, -1, 1))),
            ),
            ("translation", Value::Scalar(Oid::cst(translation2()))),
        ],
    )
    .unwrap();
    db.insert(
        Oid::named("l_desk"),
        "Desk",
        [
            ("name", Value::Scalar(Oid::str("L desk"))),
            ("color", Value::Scalar(Oid::str("red"))),
            ("extent", Value::Scalar(Oid::cst(l_shape))),
            ("translation", Value::Scalar(Oid::cst(translation2()))),
            (
                "drawer_center",
                Value::Scalar(Oid::cst(CstObject::point(
                    vec![Var::new("p"), Var::new("q")],
                    &[r(0), r(0)],
                ))),
            ),
            ("drawer", Value::Scalar(Oid::named("l_drawer"))),
        ],
    )
    .unwrap();
    // The upper-right quadrant of the L is missing: satisfiability of
    // extent ∧ w >= 1 ∧ z >= 1 fails, while w <= -1 ∧ z >= 1 succeeds.
    let res = execute(
        &mut db,
        "SELECT D FROM Desk D WHERE D.extent[E] AND (E(w,z) AND w >= 1 AND z >= 1)",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 0);
    let res = execute(
        &mut db,
        "SELECT D FROM Desk D WHERE D.extent[E] AND (E(w,z) AND w <= -1 AND z >= 1)",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 1);
    // MAX over the union takes the best disjunct.
    let res = execute(
        &mut db,
        "SELECT MAX(w SUBJECT TO ((w,z) | E AND z >= 1)) FROM Desk D WHERE D.extent[E]",
    )
    .unwrap();
    assert_eq!(res.rows[0][0], Oid::Rat(r(0)));
}

/// Strict inequalities flow end to end: an open footprint's supremum is
/// reported but MAX_POINT refuses it.
#[test]
fn strict_constraints_end_to_end() {
    let mut db = Database::new(lyric::paper_example::schema()).unwrap();
    db.declare_instance("Color", Oid::str("red")).unwrap();
    let open_extent = CstObject::from_conjunction(
        vec![Var::new("w"), Var::new("z")],
        Conjunction::of([
            Atom::gt(LinExpr::var(Var::new("w")), LinExpr::from(0)),
            Atom::lt(LinExpr::var(Var::new("w")), LinExpr::from(4)),
            Atom::ge(LinExpr::var(Var::new("z")), LinExpr::from(0)),
            Atom::le(LinExpr::var(Var::new("z")), LinExpr::from(2)),
        ]),
    );
    db.insert(
        Oid::named("open_obj"),
        "Office_Object",
        [
            ("name", Value::Scalar(Oid::str("open"))),
            ("color", Value::Scalar(Oid::str("red"))),
            ("extent", Value::Scalar(Oid::cst(open_extent))),
            ("translation", Value::Scalar(Oid::cst(translation2()))),
        ],
    )
    .unwrap();
    let res = execute(
        &mut db,
        "SELECT MAX(w SUBJECT TO ((w,z) | E)) FROM Office_Object O WHERE O.extent[E]",
    )
    .unwrap();
    assert_eq!(res.rows[0][0], Oid::Rat(r(4))); // the supremum
    let err = execute(
        &mut db,
        "SELECT MAX_POINT(w SUBJECT TO ((w,z) | E)) FROM Office_Object O WHERE O.extent[E]",
    )
    .unwrap_err();
    assert!(matches!(err, LyricError::NotAttained), "{err}");
    // But MAX_POINT along the closed axis works.
    let res = execute(
        &mut db,
        "SELECT MAX_POINT(z SUBJECT TO ((w,z) | E)) FROM Office_Object O WHERE O.extent[E]",
    )
    .unwrap();
    let p = res.rows[0][0].as_cst().unwrap();
    let point = p.find_point().unwrap();
    assert_eq!(point[1], r(2));
}

/// Disequations in queries: the satisfiability predicate understands ≠.
#[test]
fn disequation_predicate() {
    let mut db = lyric::paper_example::database();
    // The drawer center line p = -2, -2 <= q <= 0 punctured at q = -1
    // still admits a point...
    let res = execute(
        &mut db,
        "SELECT D FROM Desk D WHERE D.drawer_center[C] AND (C(p,q) AND q != -1)",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 1);
    // ...but fixing q = -1 and requiring q ≠ -1 is unsatisfiable.
    let res = execute(
        &mut db,
        "SELECT D FROM Desk D WHERE D.drawer_center[C] AND (C(p,q) AND q = -1 AND q != -1)",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 0);
}

/// Error paths surface as typed errors, not panics.
#[test]
fn error_paths() {
    let mut db = lyric::paper_example::database();
    // Schema errors are now caught by static analysis before evaluation;
    // the raw evaluator errors stay reachable through execute_unchecked.
    let analysis_code = |r: Result<lyric::QueryResult, LyricError>| match r {
        Err(LyricError::Analysis(ds)) => ds.first().map(|d| d.code),
        _ => None,
    };
    assert_eq!(
        analysis_code(execute(&mut db, "SELECT X FROM Nonexistent X")),
        Some("LYA001")
    );
    assert!(matches!(
        lyric::execute_unchecked(&mut db, "SELECT X FROM Nonexistent X"),
        Err(LyricError::UnknownClass(_))
    ));
    let bogus = "SELECT X.bogus_attr FROM Desk X WHERE X.bogus_attr[Y]";
    assert_eq!(analysis_code(execute(&mut db, bogus)), Some("LYA002"));
    assert!(matches!(
        lyric::execute_unchecked(&mut db, bogus),
        Err(LyricError::UnknownAttribute { .. })
    ));
    assert!(matches!(
        execute(&mut db, "SELECT X FROM Desk X WHERE"),
        Err(LyricError::Parse(_))
    ));
    // Dimension mismatch in an explicit variable list.
    let mismatch = "SELECT X FROM Desk X WHERE X.extent[E] AND (E(a,b,c))";
    assert_eq!(analysis_code(execute(&mut db, mismatch)), Some("LYA012"));
    assert!(matches!(
        lyric::execute_unchecked(&mut db, mismatch),
        Err(LyricError::DimensionMismatch { .. })
    ));
    // Unbounded optimization is an error, not a silent answer.
    assert!(matches!(
        execute(
            &mut db,
            "SELECT MAX(w SUBJECT TO ((w,z) | z <= 1)) FROM Desk D"
        ),
        Err(LyricError::Unbounded)
    ));
}

/// Pseudo-linear formulas may use path expressions as numeric constants
/// (§4.2): scale a constraint by a stored number.
#[test]
fn path_constants_in_formulas() {
    let mut db = lyric::paper_example::database();
    // Add a numeric attribute via a fresh class.
    // (Reuse inv_number? It's a string; instead use a literal in the query
    // via arithmetic over a located coordinate.)
    // The room location of my_desk is (6,4): use x = 6 from the stored
    // location through the formula instead of a literal.
    let res = execute(
        &mut db,
        "SELECT O, ((u,v) | E AND D AND L(x,y))
         FROM Object_In_Room O
         WHERE O.inv_number = '22-354'
           AND O.catalog_object[C] AND C.extent[E] AND C.translation[D] AND O.location[L]",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 1);
    let region = res.rows[0][1].as_cst().unwrap();
    assert!(region.denotes_same(&box2("u", "v", 2, 10, 2, 6)));
}
