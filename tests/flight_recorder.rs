//! The flight recorder end to end: budget aborts drop exactly one
//! parseable black-box dump attributing the offender, the in-flight
//! registry is observably non-empty *during* evaluation and empty after
//! every exit path, and the `LYRIC_SLOW_MS` breach trigger fires on its
//! own. The dump directory and slow threshold are process-global, so
//! the tests that touch them serialize on one mutex.

use lyric::engine::EngineBudget;
use lyric::{execute_shared, execute_with_budget, paper_example, ExecOptions, LyricError};
use lyric_bench::workload::{self, Q_PAIRWISE};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes every test that re-points the process-global dump
/// directory or slow threshold.
static DUMP_STATE: Mutex<()> = Mutex::new(());

/// A fresh, empty dump directory unique to this test.
fn fresh_dump_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lyric-flight-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dump dir");
    dir
}

/// The dump files currently in `dir` whose trigger member of the file
/// name matches.
fn dumps_in(dir: &PathBuf, trigger: &str) -> Vec<PathBuf> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir).expect("dump dir readable") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if name.starts_with("flight-") && name.contains(&format!("-{trigger}-")) {
            found.push(path);
        }
    }
    found
}

/// The acceptance pin: a query that trips its pivot budget writes
/// exactly one `budget_abort` dump — valid JSON whose offender carries
/// the query, outcome, and tripped resource, and whose in-flight
/// section still contains the aborting slot (the dump is written
/// *before* the registry guard releases). The registry itself is empty
/// once the call returns, and the recorder ring holds the summary.
#[test]
fn budget_abort_writes_one_attributed_dump() {
    let _lock = DUMP_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let dir = fresh_dump_dir("abort");
    lyric::flight::set_dump_dir(Some(dir.clone()));
    lyric::flight::recorder::set_enabled(true);

    let mut db = paper_example::database();
    let query = "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
         FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]";
    let err = execute_with_budget(&mut db, query, EngineBudget::unlimited().with_max_pivots(1))
        .expect_err("1 pivot cannot evaluate a paper query");
    assert!(matches!(err, LyricError::BudgetExceeded { .. }), "{err}");
    lyric::flight::set_dump_dir(None);

    assert_eq!(lyric::flight::inflight::len(), 0, "registry drained");

    let dumps = dumps_in(&dir, "budget_abort");
    assert_eq!(dumps.len(), 1, "exactly one dump: {dumps:?}");
    let text = std::fs::read_to_string(&dumps[0]).expect("dump readable");
    let doc = lyric::trace::json::parse(&text).expect("dump is valid JSON");
    assert_eq!(doc.get("trigger").unwrap().as_str(), Some("budget_abort"));
    assert!(doc.get("git_rev").is_some() && doc.get("version").is_some());

    let hash = format!("{:016x}", lyric::metrics::querylog::query_hash(query));
    let offender = doc.get("offender").expect("offender attributed");
    assert_eq!(
        offender.get("query_hash").unwrap().as_str(),
        Some(hash.as_str())
    );
    assert_eq!(
        offender.get("outcome").unwrap().as_str(),
        Some("budget_exceeded")
    );
    assert!(
        offender
            .get("resource")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("pivot"),
        "tripped resource named"
    );
    let inflight = doc.get("inflight").unwrap().as_arr().unwrap();
    assert!(
        inflight
            .iter()
            .any(|s| s.get("query_hash").and_then(|h| h.as_str()) == Some(hash.as_str())),
        "dump captured the offender still in flight"
    );

    assert!(
        lyric::flight::recorder::recent_queries()
            .iter()
            .any(
                |q| q.query_hash == lyric::metrics::querylog::query_hash(query)
                    && q.outcome == "budget_exceeded"
            ),
        "recorder ring holds the aborted query's summary"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A query that finishes over the slow threshold dumps with the `slow`
/// trigger (threshold 0 marks every completion slow).
#[test]
fn slow_threshold_breach_dumps_on_its_own() {
    let _lock = DUMP_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let dir = fresh_dump_dir("slow");
    lyric::flight::set_dump_dir(Some(dir.clone()));
    lyric::flight::recorder::set_enabled(true);
    lyric::metrics::querylog::set_slow_ms(Some(0));

    let db = paper_example::database();
    let query = "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]";
    let res = execute_shared(&db, query, &ExecOptions::default());
    lyric::metrics::querylog::set_slow_ms(None);
    lyric::flight::set_dump_dir(None);
    res.expect("query evaluates");

    let dumps = dumps_in(&dir, "slow");
    assert_eq!(dumps.len(), 1, "one completion, one slow dump");
    let doc = lyric::trace::json::parse(&std::fs::read_to_string(&dumps[0]).unwrap())
        .expect("dump is valid JSON");
    let offender = doc.get("offender").expect("offender attributed");
    assert_eq!(offender.get("outcome").unwrap().as_str(), Some("ok"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Registered queries are visible mid-flight: while a worker thread
/// evaluates, a concurrent scrape of the registry sees the slot — query
/// hash, live counters — and once the worker drains, the registry is
/// empty again. The worker repeats a deadline-bounded adversarial query
/// until the scraper has seen it, so the test never races on one fixed
/// window.
#[test]
fn inflight_registry_is_visible_during_evaluation_and_empty_after() {
    let _lock = DUMP_STATE.lock().unwrap_or_else(|e| e.into_inner());
    lyric::flight::set_dump_dir(None); // deadline aborts must not spray files
    lyric::flight::recorder::set_enabled(true);

    let db = workload::office_db(8, 42);
    let hash = lyric::metrics::querylog::query_hash(Q_PAIRWISE);
    let seen = AtomicBool::new(false);
    let opts = ExecOptions::default()
        .with_budget(EngineBudget::unlimited().with_deadline(Duration::from_millis(300)))
        .with_boxes(false);

    std::thread::scope(|s| {
        let worker = s.spawn(|| {
            // Evaluate until observed (bounded: ~300ms per attempt).
            for _ in 0..40 {
                let _ = execute_shared(&db, Q_PAIRWISE, &opts);
                if seen.load(Ordering::Relaxed) {
                    break;
                }
            }
        });
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            let snapshot = lyric::flight::inflight::snapshot();
            if let Some(slot) = snapshot.iter().find(|s| s.query_hash == hash) {
                assert!(slot.query.contains("SELECT"), "slot carries the text");
                seen.store(true, Ordering::Relaxed);
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        worker.join().expect("worker exits");
    });
    assert!(
        seen.load(Ordering::Relaxed),
        "scraper saw the in-flight slot"
    );
    assert_eq!(
        lyric::flight::inflight::len(),
        0,
        "registry empty after drain"
    );
}
