//! Box-pruning differential tests: interval-box pruning must be
//! *observationally free*.
//!
//! The prune in `Conjunction::satisfiable` may only change *how* an
//! answer is obtained, never the answer: for every §4.1 paper query and
//! for seeded random workloads, evaluation with `ExecOptions::boxes` on
//! and off must produce structurally identical results at every thread
//! count, with identical answer-driven counters (`prune_invariant`
//! projects away the how-counters: LP work, arithmetic ops, cache and box
//! probes). The suite runs under the CI `LYRIC_ARITH_FAST` matrix, so the
//! guarantee is pinned across both arithmetic tiers too.
//!
//! Accounting invariants ride along: with boxes on, every satisfiability
//! check consults the box exactly once (`box_checks == sat_checks`); with
//! boxes off both box counters are zero; and pruning can only ever save
//! LP runs, never add them.

use lyric::{execute_with_options, paper_example, ExecOptions};
use lyric_bench::workload::{self, Q_LINEAR};
use proptest::prelude::*;

const PAPER_QUERIES: [&str; 5] = [
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
     FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
    "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
     FROM Desk DSK
     WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
    "SELECT DSK FROM Object_In_Room O, Desk DSK
     WHERE O.catalog_object[DSK] AND O.location[L]
       AND DSK.drawer_center[C] AND DSK.translation[D]
       AND DSK.drawer.extent[DRE] AND DSK.drawer.translation[DRD]
       AND (C(p,q) AND DRE(w1,z1) AND DRD(w1,z1,x1,y1,u1,v1)
            AND D(w,z,x,y,u,v) AND L(x,y) AND w = u1 AND z = v1
            AND 0 < u AND u < 20 AND 0 < v AND v < 10)",
    "SELECT MAX(w + z SUBJECT TO ((w,z) | E)), MIN(w SUBJECT TO ((w,z) | E))
     FROM Desk D WHERE D.extent[E]",
];

/// A query whose WHERE box is disjoint from every stored extent (desks
/// live in a 200×100 room), so the box test prunes every sat check that
/// reaches a stored object.
const Q_DISJOINT: &str =
    "SELECT D FROM Desk D WHERE D.extent[E] AND (E(w,z) AND w >= 1000 AND z >= 1000)";

/// The suite isolates the sat-check-level box-prune layer, so the store
/// index stays off: with it on, a box-disjoint query is pruned at FROM
/// binding and the sat checks under test never run (that interplay is
/// covered by `tests/index_differential.rs`).
fn opts(threads: usize, boxes: bool) -> ExecOptions {
    ExecOptions::default()
        .with_threads(threads)
        .with_boxes(boxes)
        .with_index(false)
}

/// Structural equality plus denotation equality for constraint columns,
/// mirroring the concurrency differential: every pair of aligned CST
/// cells must be mutually entailing, so the check does not depend on a
/// syntactic normalization accident.
fn assert_same_answer(a: &lyric::QueryResult, b: &lyric::QueryResult, label: &str) {
    assert_eq!(a, b, "{label}: answers differ");
    for (ar, br) in a.rows.iter().zip(&b.rows) {
        for (ac, bc) in ar.iter().zip(br) {
            if let (Some(x), Some(y)) = (ac.as_cst(), bc.as_cst()) {
                assert!(x.denotes_same(y), "{label}: CST cells not denotation-equal");
            }
        }
    }
}

/// Run one query twice (boxes on / boxes off) and assert the full
/// observational-equivalence bundle.
fn assert_boxes_free(db: &lyric::oodb::Database, q: &str, threads: usize, label: &str) {
    let on = execute_with_options(&mut db.clone(), q, &opts(threads, true))
        .unwrap_or_else(|e| panic!("{label}: boxes-on run failed: {e}"));
    let off = execute_with_options(&mut db.clone(), q, &opts(threads, false))
        .unwrap_or_else(|e| panic!("{label}: boxes-off run failed: {e}"));
    assert_same_answer(&on, &off, label);
    assert_eq!(
        on.stats.prune_invariant(),
        off.stats.prune_invariant(),
        "{label}: answer-driven counters differ"
    );
    assert_eq!(
        on.stats.box_checks, on.stats.sat_checks,
        "{label}: boxes on must consult the box once per sat check"
    );
    assert_eq!(
        off.stats.box_checks + off.stats.box_prunes,
        0,
        "{label}: boxes off must never touch the box layer"
    );
    assert!(
        on.stats.lp_runs <= off.stats.lp_runs,
        "{label}: pruning added LP runs ({} > {})",
        on.stats.lp_runs,
        off.stats.lp_runs
    );
    assert!(
        on.stats.box_prunes <= on.stats.box_checks,
        "{label}: more prunes than checks"
    );
}

/// Every §4.1 paper query, at one and four threads: answers and
/// answer-driven counters are bit-identical with pruning on and off.
#[test]
fn paper_queries_are_box_pruning_invariant() {
    let db = paper_example::database();
    for (i, q) in PAPER_QUERIES.iter().enumerate() {
        for threads in [1usize, 4] {
            assert_boxes_free(
                &db,
                q,
                threads,
                &format!("paper query {i} at {threads} threads"),
            );
        }
    }
}

/// A box-disjoint query actually prunes: nonzero `box_prunes`, and with
/// the memo cache off every prune is a simplex run saved (strictly fewer
/// `lp_runs` than the exact-LP baseline).
#[test]
fn disjoint_windows_prune_and_save_lp_runs() {
    let db = paper_example::database();
    for threads in [1usize, 4] {
        assert_boxes_free(
            &db,
            Q_DISJOINT,
            threads,
            &format!("disjoint at {threads} threads"),
        );
    }
    let base = ExecOptions::default().with_cache(false).with_index(false);
    let on = execute_with_options(&mut db.clone(), Q_DISJOINT, &base.clone().with_boxes(true))
        .expect("boxes-on run");
    let off = execute_with_options(&mut db.clone(), Q_DISJOINT, &base.with_boxes(false))
        .expect("boxes-off run");
    assert!(on.rows.is_empty(), "nothing lives at w >= 1000");
    assert!(
        on.stats.box_prunes > 0,
        "disjoint query must prune: {}",
        on.stats
    );
    assert!(
        on.stats.lp_runs < off.stats.lp_runs,
        "with the cache off every prune must save an LP run ({} vs {})",
        on.stats.lp_runs,
        off.stats.lp_runs
    );
}

/// The default-options path (boxes governed by `LYRIC_BOXES`, on unless
/// set to 0) matches an explicit boxes-off run on answers — the guard
/// that turning the feature on by default changed nothing observable.
#[test]
fn default_options_match_exact_lp_answers() {
    let mut db = paper_example::database();
    let default = lyric::execute(&mut db, Q_DISJOINT).expect("default run");
    let off = execute_with_options(
        &mut db.clone(),
        Q_DISJOINT,
        &ExecOptions::default().with_boxes(false),
    )
    .expect("exact-LP run");
    assert_same_answer(&default, &off, "default vs exact-LP");
    assert_eq!(default.stats.prune_invariant(), off.stats.prune_invariant());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Seeded workload sweep: the E2 linear query over random office
    /// databases is box-pruning invariant at one and four threads.
    #[test]
    fn workload_answers_are_box_pruning_invariant(n in 2usize..8, seed in 0u64..500) {
        let db = workload::office_db(n, seed);
        for threads in [1usize, 4] {
            assert_boxes_free(&db, Q_LINEAR, threads,
                &format!("office n={n} seed={seed} threads={threads}"));
        }
    }

    /// Random conjunctions, straight at the engine API: satisfiability
    /// and entailment answers are identical with boxes on and off (the
    /// library-level face of the same guarantee the query sweeps pin).
    #[test]
    fn conjunction_answers_are_box_pruning_invariant(seed in 0u64..1_000_000) {
        let mut r = workload::rng(seed);
        let c = workload::random_conjunction(&mut r, 3, 5);
        let d = workload::random_conjunction(&mut r, 3, 3);
        let run = |boxes: bool| {
            let o = ExecOptions::default().with_boxes(boxes);
            lyric::engine::run_with_opts(o, || {
                (c.satisfiable(), d.satisfiable(), c.implies(&d))
            })
            .expect("unlimited budget")
        };
        let (ans_on, stats_on) = run(true);
        let (ans_off, stats_off) = run(false);
        prop_assert_eq!(ans_on, ans_off, "answers diverge for seed {}", seed);
        prop_assert_eq!(
            stats_on.prune_invariant(),
            stats_off.prune_invariant(),
            "answer-driven counters diverge for seed {}",
            seed
        );
        prop_assert_eq!(stats_on.box_checks, stats_on.sat_checks);
        prop_assert_eq!(stats_off.box_checks, 0u64);
    }
}
