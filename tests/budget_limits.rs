//! Evaluation-budget enforcement: adversarial inputs that would otherwise
//! run unbounded must abort promptly with `BudgetExceeded` carrying the
//! limit and the amount consumed — and default (unlimited) budgets must
//! leave every result unchanged.

use lyric::engine::{run_with, EngineBudget, Resource};
use lyric::{execute, execute_with_budget, LyricError};
use lyric_bench::workload;
use lyric_constraint::Var;
use std::time::{Duration, Instant};

/// A dense conjunction whose all-but-one-variable elimination is far
/// outside the §3.1 restriction: Fourier–Motzkin compounds the |L|·|U|
/// product at every step.
fn dense_conjunction() -> (lyric_constraint::Conjunction, Vec<Var>) {
    let mut r = workload::rng(4242);
    let conj = workload::random_satisfiable_conjunction(&mut r, 10, 40);
    let victims: Vec<Var> = (0..9).map(|i| Var::new(format!("v{i}"))).collect();
    (conj, victims)
}

#[test]
fn fm_blowup_aborts_under_atom_budget() {
    let (conj, victims) = dense_conjunction();
    let started = Instant::now();
    let err = run_with(
        EngineBudget::unlimited().with_max_fm_atoms(10_000),
        false,
        || conj.eliminate_all(victims.iter()),
    )
    .expect_err("40-atom elimination must cross the 10k FM-atom budget");
    assert_eq!(err.resource, Resource::FmAtoms);
    assert_eq!(err.limit, 10_000);
    assert!(err.consumed > err.limit, "{err}");
    // Graceful degradation means promptly, not after the blowup finishes.
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "abort was not prompt"
    );
}

#[test]
fn fm_blowup_aborts_under_deadline() {
    let (conj, victims) = dense_conjunction();
    let started = Instant::now();
    let err = run_with(
        EngineBudget::unlimited().with_deadline(Duration::from_millis(100)),
        false,
        || conj.eliminate_all(victims.iter()),
    )
    .expect_err("deadline must trip before the elimination completes");
    assert_eq!(err.resource, Resource::Time);
    assert!(err.consumed >= err.limit, "{err}");
    // The clock is checked between atoms, so the overshoot is bounded by
    // one FM step, not by the whole blowup.
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "abort was not prompt"
    );
}

#[test]
fn dnf_negation_aborts_under_disjunct_budget() {
    // Negating a k-disjunct DNF multiplies out to ~m^k disjuncts — the
    // exponential corner the paper excludes from the disjunctive family.
    let mut r = workload::rng(7);
    let dnf = workload::random_dnf(&mut r, 12, 6, 3);
    let err = run_with(
        EngineBudget::unlimited().with_max_disjuncts(20_000),
        false,
        || dnf.negate(),
    )
    .expect_err("negation of 12 disjuncts must cross the 20k disjunct budget");
    assert_eq!(err.resource, Resource::Disjuncts);
    assert!(err.consumed > err.limit, "{err}");
}

#[test]
fn query_level_budget_returns_structured_error() {
    let mut db = lyric::paper_example::database();
    let query = "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
         FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]";
    let err = execute_with_budget(&mut db, query, EngineBudget::unlimited().with_max_pivots(1))
        .expect_err("1 pivot cannot evaluate a paper query");
    match err {
        LyricError::BudgetExceeded {
            resource,
            limit,
            consumed,
        } => {
            assert_eq!(resource, Resource::Pivots);
            assert_eq!(limit, 1);
            assert!(consumed > limit);
        }
        other => panic!("expected BudgetExceeded, got {other}"),
    }
    // The same query under the interactive envelope completes and reports
    // its work.
    let res = execute_with_budget(&mut db, query, EngineBudget::interactive())
        .expect("interactive budget is generous enough for paper queries");
    assert_eq!(res.rows.len(), 2);
    assert!(res.stats.pivots > 0);
}

#[test]
fn default_budget_leaves_results_unchanged() {
    // The same statements through `execute` (unlimited budget, cache on)
    // and `execute_with_budget(interactive)` answer identically.
    let queries = [
        "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
        "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
         FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
        "SELECT MAX(w + z SUBJECT TO ((w,z) | E)), MIN(w SUBJECT TO ((w,z) | E))
         FROM Desk D WHERE D.extent[E]",
    ];
    for q in queries {
        let mut db1 = lyric::paper_example::database();
        let mut db2 = lyric::paper_example::database();
        let unlimited = execute(&mut db1, q).expect("paper query evaluates");
        let budgeted = execute_with_budget(&mut db2, q, EngineBudget::interactive())
            .expect("interactive budget suffices");
        assert_eq!(unlimited, budgeted, "answers must not depend on the budget");
    }
}

#[test]
fn library_results_identical_with_and_without_context() {
    // Raw constraint operations answer the same inside and outside an
    // engine context: instrumentation is observation, not behavior.
    let mut r = workload::rng(99);
    for _ in 0..10 {
        let c = workload::random_conjunction(&mut r, 4, 8);
        let d = workload::random_dnf(&mut r, 6, 4, 3);
        let bare = (c.satisfiable(), d.simplify(), c.find_point());
        let (ctx, stats) = run_with(EngineBudget::unlimited(), true, || {
            (c.satisfiable(), d.simplify(), c.find_point())
        })
        .expect("unlimited budget");
        assert_eq!(bare.0, ctx.0);
        assert_eq!(bare.1, ctx.1);
        assert_eq!(bare.2.is_some(), ctx.2.is_some());
        assert!(stats.sat_checks > 0, "work was counted: {stats}");
    }
}
