//! Query-log schema compatibility: v2 lines carry the version and build
//! members, and consumers written against v1 keep working — pinned here
//! by running a v1 fixture line and a freshly captured v2 line through
//! the same parser and the same member probes. One `#[test]`, because
//! the capture sink is process-global.

use lyric::metrics::querylog;
use lyric::trace::json::{parse, Json};
use lyric::{execute_shared, paper_example, ExecOptions};

/// A query-log line as this repo emitted it before the v2 prefix
/// (no `v`, no `git_rev`). Frozen verbatim: if this stops parsing, a
/// consumer of archived logs breaks.
const V1_FIXTURE: &str = "{\"query_hash\":\"159e09cddc8e355c\",\"query\":\"SELECT X FROM Desk X\",\
\"outcome\":\"ok\",\"rows\":1,\"duration_us\":287,\"threads\":1,\"trace_id\":41,\
\"stats\":{\"pivots\":7,\"cache_hits\":2}}";

fn probe_common_members(line: &Json) {
    for key in [
        "query_hash",
        "outcome",
        "rows",
        "duration_us",
        "threads",
        "trace_id",
        "stats",
    ] {
        assert!(line.get(key).is_some(), "missing {key}");
    }
    assert_eq!(line.get("outcome").unwrap().as_str(), Some("ok"));
}

#[test]
fn v1_fixture_and_live_v2_lines_parse_identically() {
    // The archived v1 shape still parses and answers the same probes.
    let v1 = parse(V1_FIXTURE).expect("v1 fixture parses");
    probe_common_members(&v1);
    assert!(v1.get("v").is_none(), "fixture predates the version member");

    // A line captured from the live logger is v2: same body, prefixed
    // with the schema version and the build's git revision.
    let db = paper_example::database();
    lyric::metrics::set_enabled(true);
    let buf = querylog::capture();
    let query = "SELECT X FROM Desk X";
    let res = execute_shared(&db, query, &ExecOptions::default());
    querylog::set_sink(None);
    res.expect("query evaluates");

    let captured = String::from_utf8(buf.lock().unwrap().clone()).expect("log is UTF-8");
    let hash = format!("{:016x}", querylog::query_hash(query));
    let line = captured
        .lines()
        .find(|l| l.contains(&hash))
        .expect("the query logged while captured");
    let v2 = parse(line).expect("v2 line parses");
    probe_common_members(&v2);
    assert_eq!(
        v2.get("v").unwrap().as_f64(),
        Some(querylog::SCHEMA_VERSION as f64),
        "live lines carry the schema version"
    );
    let rev = v2
        .get("git_rev")
        .unwrap()
        .as_str()
        .expect("git_rev is a string");
    assert!(!rev.is_empty());
}
