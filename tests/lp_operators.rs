//! The §4.2 LP operators (`MAX`/`MIN`/`MAX_POINT`/`MIN_POINT … SUBJECT
//! TO`) across edge cases: open sets, unions, degenerate objectives,
//! quantified formulas, and exactness of the answers.

use lyric::paper_example::translation2;
use lyric::{execute, LyricError};
use lyric_arith::Rational;
use lyric_constraint::{Atom, Conjunction, CstObject, LinExpr, Var};
use lyric_oodb::{Database, Oid, Value};

fn r(n: i64) -> Rational {
    Rational::from_int(n)
}

fn db_with_extent(extent: CstObject) -> Database {
    let mut db = Database::new(lyric::paper_example::schema()).unwrap();
    db.declare_instance("Color", Oid::str("red")).unwrap();
    db.insert(
        Oid::named("obj"),
        "Office_Object",
        [
            ("name", Value::Scalar(Oid::str("obj"))),
            ("color", Value::Scalar(Oid::str("red"))),
            ("extent", Value::Scalar(Oid::cst(extent))),
            ("translation", Value::Scalar(Oid::cst(translation2()))),
        ],
    )
    .unwrap();
    db
}

fn diamond() -> CstObject {
    // |w| + |z| <= 2 as four halfplanes.
    let w = LinExpr::var(Var::new("w"));
    let z = LinExpr::var(Var::new("z"));
    CstObject::from_conjunction(
        vec![Var::new("w"), Var::new("z")],
        Conjunction::of([
            Atom::le(&w + &z, LinExpr::from(2)),
            Atom::le(&w - &z, LinExpr::from(2)),
            Atom::le(-&w + z.clone(), LinExpr::from(2)),
            Atom::le(&(-&w) - &z, LinExpr::from(2)),
        ]),
    )
}

#[test]
fn fractional_exact_answers() {
    // max 2w + 3z over the diamond: vertex answers are exact rationals.
    let mut db = db_with_extent(diamond());
    let res = execute(
        &mut db,
        "SELECT MAX(2*w + 3*z SUBJECT TO ((w,z) | E)),
                MIN(w - z SUBJECT TO ((w,z) | E))
         FROM Office_Object O WHERE O.extent[E]",
    )
    .unwrap();
    // max 2w+3z on |w|+|z|<=2 is at (0,2): 6. min w−z at (0,2): −2? No:
    // w−z minimal at (0,2) → −2, at (−2,0) → −2; both vertices give −2…
    // actually (−1,1) interior edge values: w−z = −2 along the whole edge.
    assert_eq!(res.rows[0][0], Oid::Rat(r(6)));
    assert_eq!(res.rows[0][1], Oid::Rat(r(-2)));
    // A fractional optimum: max w subject to 3w <= 2 within the diamond.
    let res = execute(
        &mut db,
        "SELECT MAX(w SUBJECT TO ((w,z) | E AND 3*w <= 2)) FROM Office_Object O WHERE O.extent[E]",
    )
    .unwrap();
    assert_eq!(res.rows[0][0], Oid::Rat(Rational::from_pair(2, 3)));
}

#[test]
fn max_point_lands_on_vertex() {
    let mut db = db_with_extent(diamond());
    let res = execute(
        &mut db,
        "SELECT MAX_POINT(2*w + 3*z SUBJECT TO ((w,z) | E)) FROM Office_Object O WHERE O.extent[E]",
    )
    .unwrap();
    let p = res.rows[0][0].as_cst().unwrap().find_point().unwrap();
    assert_eq!(p, vec![r(0), r(2)]);
}

#[test]
fn optimization_over_quantified_formula() {
    // The SUBJECT TO formula can carry existential structure: maximize u
    // over the translated extent without naming the local coordinates in
    // the projection.
    let mut db = db_with_extent(lyric::paper_example::box2("w", "z", -4, 4, -2, 2));
    let res = execute(
        &mut db,
        "SELECT MAX(u SUBJECT TO ((u,v) | E AND D AND x = 6 AND y = 4))
         FROM Office_Object O WHERE O.extent[E] AND O.translation[D]",
    )
    .unwrap();
    assert_eq!(res.rows[0][0], Oid::Rat(r(10)));
}

#[test]
fn objective_outside_formula_dimensions_is_an_error() {
    let mut db = db_with_extent(diamond());
    // Caught statically: `q` is not among the projected dimensions (w, z).
    let src = "SELECT MAX(q SUBJECT TO ((w,z) | E)) FROM Office_Object O WHERE O.extent[E]";
    let err = execute(&mut db, src).unwrap_err();
    assert!(
        matches!(&err, LyricError::Analysis(ds) if ds.iter().any(|d| d.code == "LYA014")),
        "{err}"
    );
    // The evaluator reports the same failure when analysis is skipped.
    let err = lyric::execute_unchecked(&mut db, src).unwrap_err();
    assert!(matches!(err, LyricError::TypeError(_)), "{err}");
}

#[test]
fn empty_feasible_set_is_an_error() {
    let mut db = db_with_extent(diamond());
    let err = execute(
        &mut db,
        "SELECT MAX(w SUBJECT TO ((w,z) | E AND w >= 10)) FROM Office_Object O WHERE O.extent[E]",
    )
    .unwrap_err();
    assert!(matches!(err, LyricError::EmptyOptimization), "{err}");
}

#[test]
fn min_point_on_union_picks_best_disjunct() {
    let left = lyric::paper_example::box2("w", "z", -4, -2, 0, 1);
    let right = lyric::paper_example::box2("w", "z", 2, 4, 0, 1);
    let mut db = db_with_extent(left.or(&right));
    let res = execute(
        &mut db,
        "SELECT MIN(w SUBJECT TO ((w,z) | E)), MIN_POINT(w SUBJECT TO ((w,z) | E))
         FROM Office_Object O WHERE O.extent[E]",
    )
    .unwrap();
    assert_eq!(res.rows[0][0], Oid::Rat(r(-4)));
    let p = res.rows[0][1].as_cst().unwrap().find_point().unwrap();
    assert_eq!(p[0], r(-4));
}

#[test]
fn constant_objective() {
    let mut db = db_with_extent(diamond());
    let res = execute(
        &mut db,
        "SELECT MAX(0 * w + 7 SUBJECT TO ((w,z) | E)) FROM Office_Object O WHERE O.extent[E]",
    )
    .unwrap();
    assert_eq!(res.rows[0][0], Oid::Rat(r(7)));
}

#[test]
fn lp_operators_per_row() {
    // One MAX per FROM binding: two objects with different extents give
    // different optima in the same query.
    let mut db = db_with_extent(diamond());
    db.insert(
        Oid::named("obj2"),
        "Office_Object",
        [
            ("name", Value::Scalar(Oid::str("obj2"))),
            ("color", Value::Scalar(Oid::str("red"))),
            (
                "extent",
                Value::Scalar(Oid::cst(lyric::paper_example::box2("w", "z", 0, 1, 0, 1))),
            ),
            ("translation", Value::Scalar(Oid::cst(translation2()))),
        ],
    )
    .unwrap();
    let res = execute(
        &mut db,
        "SELECT O.name, MAX(w + z SUBJECT TO ((w,z) | E))
         FROM Office_Object O WHERE O.extent[E]",
    )
    .unwrap();
    assert_eq!(res.rows.len(), 2);
    let find = |name: &str| {
        res.rows
            .iter()
            .find(|row| row[0] == Oid::str(name))
            .map(|row| row[1].clone())
            .unwrap()
    };
    assert_eq!(find("obj"), Oid::Rat(r(2)));
    assert_eq!(find("obj2"), Oid::Rat(r(2)));
    // Distinguish with a different objective.
    let res = execute(
        &mut db,
        "SELECT O.name, MIN(w SUBJECT TO ((w,z) | E))
         FROM Office_Object O WHERE O.extent[E]",
    )
    .unwrap();
    let find = |name: &str| {
        res.rows
            .iter()
            .find(|row| row[0] == Oid::str(name))
            .map(|row| row[1].clone())
            .unwrap()
    };
    assert_eq!(find("obj"), Oid::Rat(r(-2)));
    assert_eq!(find("obj2"), Oid::Rat(r(0)));
}
