//! Corrupt-snapshot golden suite: every way a snapshot file can be
//! damaged must surface as a structured `LyricError::SnapshotCorrupt` —
//! no panics, and no partially-decoded `Database` ever escaping. Each
//! corruption mode pins the *message* too, so a regression that folds
//! two failure modes together (or starts panicking) is caught here.

use lyric::snapshot::{from_bytes, to_bytes, SnapshotExt};
use lyric::store::snapshot::MAGIC;
use lyric::{paper_example, LyricError};
use lyric_oodb::Database;

fn snapshot_bytes() -> Vec<u8> {
    to_bytes(&paper_example::database()).expect("paper database encodes")
}

/// Decode must fail with `SnapshotCorrupt` and the message must contain
/// `needle` (the golden fragment naming the failure mode).
fn assert_corrupt(bytes: &[u8], needle: &str, label: &str) {
    match from_bytes(bytes) {
        Err(LyricError::SnapshotCorrupt(msg)) => assert!(
            msg.contains(needle),
            "{label}: expected {needle:?} in message, got: {msg}"
        ),
        Err(other) => panic!("{label}: wrong error kind: {other}"),
        Ok(_) => panic!("{label}: corrupt snapshot decoded successfully"),
    }
}

/// Truncation at *every* byte offset: always a structured error, never a
/// panic, never a partial database.
#[test]
fn truncation_at_every_offset_is_corrupt() {
    let bytes = snapshot_bytes();
    for cut in 0..bytes.len() {
        match from_bytes(&bytes[..cut]) {
            Err(LyricError::SnapshotCorrupt(_)) => {}
            Err(other) => panic!("cut at {cut}: wrong error kind: {other}"),
            Ok(_) => panic!("cut at {cut}: truncated snapshot decoded"),
        }
    }
}

#[test]
fn flipped_magic_is_corrupt() {
    let mut bytes = snapshot_bytes();
    bytes[0] ^= 0xff;
    assert_corrupt(&bytes, "bad magic", "flipped magic byte");
}

#[test]
fn wrong_version_tag_is_corrupt() {
    let mut bytes = snapshot_bytes();
    bytes[8] = 99; // version field follows the 8-byte magic
    assert_corrupt(&bytes, "unsupported snapshot version 99", "version skew");
}

#[test]
fn flipped_payload_byte_fails_its_checksum() {
    let mut bytes = snapshot_bytes();
    // First payload byte of the first (META) section: after magic(8),
    // version(4), count(4), tag(4), len(8).
    bytes[28] ^= 0x01;
    assert_corrupt(
        &bytes,
        "checksum mismatch in section 'META'",
        "payload flip",
    );
}

#[test]
fn flipped_checksum_byte_is_corrupt() {
    let bytes = snapshot_bytes();
    // Corrupt the *stored checksum* of the last section instead of its
    // payload: the trailing 8 bytes of the file.
    let mut bad = bytes.clone();
    let n = bad.len();
    bad[n - 1] ^= 0xff;
    assert_corrupt(&bad, "checksum mismatch", "stored checksum flip");
}

#[test]
fn zero_length_section_is_corrupt() {
    let bytes = lyric::store::snapshot::write_container(&[(*b"META", vec![])]);
    assert_corrupt(&bytes, "zero-length section 'META'", "empty section");
}

#[test]
fn trailing_garbage_is_corrupt() {
    let mut bytes = snapshot_bytes();
    bytes.push(0);
    assert_corrupt(&bytes, "trailing bytes", "trailing garbage");
}

#[test]
fn wrong_section_layout_is_corrupt() {
    // A structurally valid container with the wrong sections.
    let bytes = lyric::store::snapshot::write_container(&[(*b"WHAT", b"objects=0\n".to_vec())]);
    assert_corrupt(&bytes, "expected 2 sections", "wrong section count");
}

#[test]
fn undecodable_payload_is_corrupt() {
    // Valid container, valid layout, garbage database text inside.
    let bytes = lyric::store::snapshot::write_container(&[
        (*b"META", b"objects=1\n".to_vec()),
        (*b"DBTX", b"not a database dump".to_vec()),
    ]);
    assert_corrupt(&bytes, "", "garbage DBTX payload");
}

#[test]
fn object_count_drift_is_corrupt() {
    // Re-wrap the real DBTX payload under a lying META count.
    let sections = lyric::store::snapshot::read_container(&snapshot_bytes()).expect("decodes");
    let dbtx = sections[1].1.clone();
    let bytes = lyric::store::snapshot::write_container(&[
        (*b"META", b"objects=999999\n".to_vec()),
        (*b"DBTX", dbtx),
    ]);
    assert_corrupt(&bytes, "declares 999999 objects", "META/DBTX drift");
}

/// The file-level loader wraps I/O failures the same way: a missing path
/// is `SnapshotCorrupt`, not a panic.
#[test]
fn missing_file_is_corrupt_not_a_panic() {
    let err = Database::load_snapshot("/nonexistent/lyric_nope.snap")
        .expect_err("missing file must not load");
    assert!(
        matches!(err, LyricError::SnapshotCorrupt(_)),
        "wrong error kind: {err}"
    );
}

/// A corrupt file on disk round-trips through the same structured error,
/// and a good file loads a database that answers queries — the positive
/// control for the suite.
#[test]
fn file_level_corruption_and_recovery() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("lyric_corrupt_suite_{}.snap", std::process::id()));
    let db = paper_example::database();
    db.save_snapshot(&path).expect("snapshot saves");

    // Flip one byte in the middle of the file on disk.
    let mut bytes = std::fs::read(&path).expect("file readable");
    assert_eq!(&bytes[..8], &MAGIC, "snapshot starts with the magic");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&path, &bytes).expect("file writable");
    let err = Database::load_snapshot(&path).expect_err("corrupt file must not load");
    assert!(
        matches!(err, LyricError::SnapshotCorrupt(_)),
        "wrong error kind: {err}"
    );

    // Restore it; loading works again and the database answers.
    bytes[mid] ^= 0x20;
    std::fs::write(&path, &bytes).expect("file writable");
    let reloaded = Database::load_snapshot(&path).expect("restored file loads");
    let res = lyric::execute_shared(
        &reloaded,
        "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
        &lyric::ExecOptions::default(),
    )
    .expect("reloaded database answers");
    assert!(!res.rows.is_empty());
    let _ = std::fs::remove_file(&path);
}
