//! Well-formedness properties of emitted span trees.
//!
//! Every trace from [`lyric::execute_traced`] must satisfy: a single
//! `query` root covering the whole source; children nested within their
//! parent's time interval, in disjoint start order *per logical thread*
//! (siblings with different `tid`s ran concurrently and may overlap); and
//! per-span *exclusive* counter deltas that sum exactly to the query's
//! aggregate [`lyric::EngineStats`] — the trace partitions the query's
//! work with nothing counted twice and nothing lost, whether it ran
//! serially or across a worker pool. The Chrome export of every checked
//! trace must also validate structurally.

use lyric::trace::{SpanKind, Trace, TraceSpan, MAIN_TID};
use lyric::ExecOptions;
use lyric::{
    execute_traced, execute_traced_with_options, execute_with_options, paper_example, EngineBudget,
    EngineStats,
};
use lyric_bench::workload::{self, Q_LINEAR, Q_PAIRWISE};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

/// The §4.1 worked-example queries (the same set the bench report runs).
const PAPER_QUERIES: [&str; 5] = [
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u,v) | E AND D AND x = 6 AND y = 4)
     FROM Office_Object CO WHERE CO.extent[E] AND CO.translation[D]",
    "SELECT DSK, ((w,z) | DSK.drawer.extent(w,z) AND z >= w)
     FROM Desk DSK
     WHERE DSK.color = 'red' AND DSK.drawer_center[C] AND (C(p,q) |= p = 0)",
    "SELECT DSK FROM Object_In_Room O, Desk DSK
     WHERE O.catalog_object[DSK] AND O.location[L]
       AND DSK.drawer_center[C] AND DSK.translation[D]
       AND DSK.drawer.extent[DRE] AND DSK.drawer.translation[DRD]
       AND (C(p,q) AND DRE(w1,z1) AND DRD(w1,z1,x1,y1,u1,v1)
            AND D(w,z,x,y,u,v) AND L(x,y) AND w = u1 AND z = v1
            AND 0 < u AND u < 20 AND 0 < v AND v < 10)",
    "SELECT MAX(w + z SUBJECT TO ((w,z) | E)), MIN(w SUBJECT TO ((w,z) | E))
     FROM Desk D WHERE D.extent[E]",
];

/// Children must sit inside their parent's interval and, *per logical
/// thread id*, be pairwise disjoint and in start order. Siblings with
/// different tids are worker subtrees of a parallel region: they ran
/// concurrently, so only the per-tid sequences are ordered.
fn assert_nested(span: &TraceSpan) {
    let mut cursors: BTreeMap<u32, Duration> = BTreeMap::new();
    for c in &span.children {
        let cursor = cursors.entry(c.tid).or_insert(span.start);
        assert!(
            c.start >= *cursor,
            "same-tid sibling spans overlap or are out of order"
        );
        assert!(c.end() <= span.end(), "child span escapes its parent");
        *cursor = c.end();
        assert_nested(c);
    }
}

fn assert_well_formed(trace: &Trace, aggregate: &EngineStats) {
    assert_eq!(trace.root.kind, SpanKind::Query, "single query root");
    assert_eq!(trace.dropped_spans, 0, "no spans over the cap");
    assert_nested(&trace.root);
    // The exclusive (self) deltas partition the aggregate exactly:
    // nothing counted twice, nothing lost.
    assert_eq!(trace.summed_self_stats(), *aggregate);
    assert_eq!(*trace.total_stats(), *aggregate);
    // And the Chrome export of the same tree is structurally valid.
    let chrome = lyric::trace::to_chrome_trace(trace);
    let events =
        lyric::trace::chrome::validate_chrome_trace(&chrome).expect("chrome export validates");
    assert!(events >= trace.span_count());
}

/// The acceptance case: `:profile` on the paper's Q1 yields a span tree
/// whose per-span deltas sum exactly to `QueryResult::stats`, plus a
/// valid Chrome export.
#[test]
fn q1_trace_partitions_query_stats() {
    let mut db = paper_example::database();
    let src = PAPER_QUERIES[0];
    let (res, trace) =
        execute_traced(&mut db, src, EngineBudget::unlimited()).expect("q1 evaluates");
    assert_eq!(res.rows.len(), 1);
    assert_well_formed(&trace, &res.stats);
    // The root covers the whole source and the front-end phases are there.
    assert_eq!(trace.root.source, Some((0, src.len())));
    let kinds: Vec<SpanKind> = trace.root.children.iter().map(|c| c.kind).collect();
    for expected in [
        SpanKind::Lex,
        SpanKind::Parse,
        SpanKind::Analyze,
        SpanKind::FromBind,
        SpanKind::Where,
    ] {
        assert!(kinds.contains(&expected), "missing {expected:?} phase");
    }
}

/// Every §4.1 paper query produces a well-formed trace; the queries cover
/// path predicates, sat and entailment checks, and the LP operators.
#[test]
fn paper_query_traces_are_well_formed() {
    for src in PAPER_QUERIES {
        let mut db = paper_example::database();
        let (res, trace) =
            execute_traced(&mut db, src, EngineBudget::unlimited()).expect("paper query evaluates");
        assert_well_formed(&trace, &res.stats);
    }
    // The entailment query (Q4) actually records an entailment-check span.
    let mut db = paper_example::database();
    let (_, trace) =
        execute_traced(&mut db, PAPER_QUERIES[2], EngineBudget::unlimited()).expect("q4 evaluates");
    let mut saw_entail = false;
    trace
        .root
        .walk(&mut |s, _| saw_entail |= s.kind == SpanKind::EntailCheck);
    assert!(saw_entail, "q4 must record an entail_check span");
}

/// A budget abort under tracing returns the same error as the untraced
/// path — the partial trace is discarded, not half-sealed.
#[test]
fn traced_budget_abort_matches_untraced() {
    // Boxes off: interval pruning answers this workload's sat checks
    // without any pivots, and the point here is hitting the pivot cap.
    let opts = ExecOptions::default()
        .with_budget(EngineBudget::unlimited().with_max_pivots(1))
        .with_boxes(false);
    let mut db = workload::office_db(8, 42);
    let traced = execute_traced_with_options(&mut db.clone(), Q_PAIRWISE, &opts).map(|_| ());
    let untraced = execute_with_options(&mut db, Q_PAIRWISE, &opts).map(|_| ());
    match (traced, untraced) {
        (
            Err(lyric::LyricError::BudgetExceeded { resource: a, .. }),
            Err(lyric::LyricError::BudgetExceeded { resource: b, .. }),
        ) => {
            assert_eq!(a, b);
        }
        other => panic!("both runs must abort on the 1-pivot budget, got {other:?}"),
    }
}

/// Multi-threaded evaluation still yields ONE well-formed logical trace:
/// a single query root, per-tid nesting, self-stats partitioning the
/// aggregate exactly, multiple distinct tids present, and a Chrome export
/// that validates — while the answer stays identical to the serial run.
#[test]
fn multithreaded_traces_are_well_formed() {
    let db = workload::office_db(10, 42);
    let serial = lyric::execute(&mut db.clone(), Q_LINEAR).expect("linear query evaluates");
    for threads in [2usize, 4, 8] {
        let opts = ExecOptions::default().with_threads(threads);
        let (res, trace) = execute_traced_with_options(&mut db.clone(), Q_LINEAR, &opts)
            .expect("linear query evaluates");
        assert_well_formed(&trace, &res.stats);
        assert_eq!(
            res, serial,
            "tracing + {threads} threads changed the answer"
        );
        let tids = trace.distinct_tids();
        assert_eq!(tids[0], MAIN_TID);
        assert!(
            tids.len() >= 2,
            "expected worker subtrees at {threads} threads, got tids {tids:?}"
        );
        // Worker subtrees are explicit worker-kind spans.
        let mut workers = 0usize;
        trace
            .root
            .walk(&mut |s, _| workers += usize::from(s.kind == SpanKind::Worker));
        assert!(workers >= 1, "worker spans must be recorded");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Traces of the E2 workload query stay well-formed across database
    /// sizes and seeds, and tracing never changes the answer.
    #[test]
    fn workload_traces_are_well_formed(n in 2usize..12, seed in 0u64..1_000) {
        let db = workload::office_db(n, seed);
        let (traced_res, trace) = execute_traced(
            &mut db.clone(),
            Q_LINEAR,
            EngineBudget::unlimited(),
        )
        .expect("linear query evaluates");
        assert_well_formed(&trace, &traced_res.stats);
        let plain_res = lyric::execute(&mut db.clone(), Q_LINEAR).expect("linear query evaluates");
        prop_assert_eq!(traced_res, plain_res);
    }
}
